//! The experiment runner: drives a [`dyno_view::ViewManager`] against a
//! [`SimPort`] until every scheduled source commit has been maintained.

use dyno_core::{CorrectionPolicy, StepOutcome, Strategy};
use dyno_obs::Collector;
use dyno_view::{AdaptationMode, ViewDefinition, ViewError, ViewManager};

use crate::consistency::{check_convergence, check_reflected};
use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::port::{ScheduledCommit, SimPort};

/// One experiment to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The source space (initial states).
    pub space: dyno_source::SourceSpace,
    /// The view to materialize.
    pub view: ViewDefinition,
    /// Future autonomous commits.
    pub schedule: Vec<ScheduledCommit>,
    /// Detection strategy.
    pub strategy: Strategy,
    /// Correction policy (cycle merge vs. blind merge-all ablation).
    pub policy: CorrectionPolicy,
    /// View-adaptation mode (incremental-when-possible vs. recompute-only
    /// ablation).
    pub adaptation: AdaptationMode,
    /// Cost model.
    pub cost: CostModel,
    /// When true, audit strong consistency after every committed entry
    /// (expensive; for correctness tests, not cost experiments).
    pub audit: bool,
    /// Step budget (guards the theoretical infinite-abort loop of paper
    /// Section 4.4).
    pub max_steps: u64,
    /// When true, the run's collector records a structured trace (spans per
    /// maintenance attempt, scheduler decisions, abort events) stamped in
    /// simulated µs; export it from [`RunReport::obs`].
    pub tracing: bool,
    /// When true, the run's collector also captures per-update lineage
    /// (causal provenance records); query it with
    /// [`dyno_obs::Collector::explain`] or export it via
    /// [`dyno_obs::export_chrome`] from [`RunReport::obs`].
    pub lineage: bool,
}

impl Scenario {
    /// A scenario with defaults: pessimistic, calibrated costs, no audit,
    /// generous step budget.
    pub fn new(
        space: dyno_source::SourceSpace,
        view: ViewDefinition,
        schedule: Vec<ScheduledCommit>,
    ) -> Self {
        let max_steps = 50 * schedule.len() as u64 + 1_000;
        Scenario {
            space,
            view,
            schedule,
            strategy: Strategy::Pessimistic,
            policy: CorrectionPolicy::default(),
            adaptation: AdaptationMode::default(),
            cost: CostModel::default(),
            audit: false,
            max_steps,
            tracing: false,
            lineage: false,
        }
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the correction policy.
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the adaptation mode.
    pub fn with_adaptation(mut self, adaptation: AdaptationMode) -> Self {
        self.adaptation = adaptation;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables the strong-consistency audit.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enables structured tracing for the run.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enables lineage (provenance) capture for the run.
    pub fn with_lineage(mut self) -> Self {
        self.lineage = true;
        self
    }
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated-time metrics (the paper's y-axes).
    pub metrics: Metrics,
    /// View-manager counters.
    pub view_stats: dyno_view::ViewStats,
    /// Scheduler counters.
    pub dyno_stats: dyno_core::DynoStats,
    /// Final materialized extent size.
    pub final_mv_len: u64,
    /// Whether the final extent matches the view over final source states.
    pub converged: bool,
    /// Strong-consistency audit failures (0 when `audit` was false or all
    /// checks passed).
    pub audit_violations: u64,
    /// Steps executed.
    pub steps: u64,
    /// Whether the run exhausted its step budget before quiescing.
    pub exhausted: bool,
    /// The run's collector: registry snapshots (`sim.*`, `dyno.*`,
    /// `view.*`, …) and — when [`Scenario::tracing`] was on — the full
    /// trace, ready for `trace_jsonl()` / `metrics_json()` export.
    pub obs: Collector,
}

/// Runs a scenario to completion.
pub fn run_scenario(scenario: Scenario) -> Result<RunReport, ViewError> {
    let Scenario {
        space,
        view,
        schedule,
        strategy,
        policy,
        adaptation,
        cost,
        audit,
        max_steps,
        tracing,
        lineage,
    } = scenario;
    let info = space.info().clone();
    let mut port = SimPort::new(space, schedule, cost);
    if tracing {
        port.obs().set_tracing(true);
    }
    if lineage {
        // `with_lineage` installs the ring in the shared inner, so every
        // clone of this run's collector sees it.
        let _ = port.obs().clone().with_lineage(64 * 1024);
    }
    let mut mgr = ViewManager::new(view, info, strategy)
        .with_obs(port.obs().clone())
        .with_correction(policy)
        .with_adaptation(adaptation);
    mgr.initialize(&mut port)?;
    port.start_metering();

    let mut steps = 0;
    let mut audit_violations = 0;
    let mut exhausted = false;
    loop {
        if steps >= max_steps {
            exhausted = true;
            break;
        }
        match mgr.step(&mut port)? {
            StepOutcome::Idle => {
                if !port.advance_to_next_commit() {
                    break;
                }
            }
            StepOutcome::Committed => {
                steps += 1;
                if audit {
                    let ok = check_reflected(port.space(), mgr.view(), mgr.reflected(), mgr.mv())
                        .unwrap_or(false);
                    if !ok {
                        audit_violations += 1;
                    }
                }
            }
            StepOutcome::Aborted => {
                steps += 1;
            }
            StepOutcome::Parked => {
                // A bare SimPort never reports a source unavailable; only
                // the chaos runner (crate::chaos) drives parked entries.
                steps += 1;
            }
            StepOutcome::Failed => unreachable!("manager.step surfaces failures as Err"),
        }
    }

    let converged =
        !exhausted && check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap_or(false);
    let metrics = port.metrics();
    assert_eq!(
        metrics.skipped_commits, 0,
        "workload scheduled a commit its source rejected — generator bug",
    );
    Ok(RunReport {
        metrics,
        view_stats: mgr.stats(),
        dyno_stats: mgr.dyno_stats(),
        final_mv_len: mgr.mv().len(),
        converged,
        audit_violations,
        steps,
        exhausted,
        obs: port.obs().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{build_testbed, TestbedConfig};
    use crate::workload::WorkloadGen;

    fn tiny_cfg() -> TestbedConfig {
        TestbedConfig { tuples_per_relation: 200, ..Default::default() }
    }

    #[test]
    fn du_only_run_converges_with_audit() {
        let cfg = tiny_cfg();
        let (space, view) = build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, 11);
        let schedule = gen.du_flood(20);
        let report = run_scenario(Scenario::new(space, view, schedule).with_audit()).unwrap();
        assert!(report.converged, "MV must converge to final source states");
        assert_eq!(report.audit_violations, 0, "strong consistency at every commit");
        assert_eq!(report.view_stats.du_committed, 20);
        assert_eq!(report.metrics.aborts, 0);
        assert_eq!(report.dyno_stats.graph_builds, 0, "O(1) fast path for DU-only");
        assert!(report.metrics.total_cost_us() > 0);
    }

    #[test]
    fn mixed_run_converges_both_strategies() {
        for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
            let cfg = tiny_cfg();
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, 13);
            let mut schedule = gen.du_flood(10);
            schedule.extend(gen.sc_train(3, 1_000_000, 20_000_000));
            let report = run_scenario(
                Scenario::new(space, view, schedule).with_strategy(strategy).with_audit(),
            )
            .unwrap();
            assert!(report.converged, "{strategy:?} must converge");
            assert_eq!(report.audit_violations, 0, "{strategy:?} strong consistency");
            assert!(!report.exhausted);
            assert_eq!(report.metrics.skipped_commits, 0);
        }
    }

    #[test]
    fn traced_run_metrics_project_the_registry() {
        let cfg = tiny_cfg();
        let (space, view) = build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, 13);
        let mut schedule = gen.du_flood(10);
        schedule.extend(gen.sc_train(2, 1_000_000, 10_000_000));
        let report = run_scenario(
            Scenario::new(space, view, schedule).with_strategy(Strategy::Optimistic).with_tracing(),
        )
        .unwrap();
        let reg = report.obs.registry();
        let counter = |name| reg.counter_value(name).unwrap_or(0);
        // Metrics is a projection of the registry, so equality is exact.
        assert_eq!(counter("sim.committed_us"), report.metrics.committed_us);
        assert_eq!(counter("sim.abort_us"), report.metrics.abort_us);
        assert_eq!(counter("sim.aborts"), report.metrics.aborts);
        assert_eq!(counter("sim.attempts"), report.metrics.attempts);
        assert_eq!(counter("sim.queries"), report.metrics.queries);
        // One span per maintenance attempt, stamped in simulated µs.
        let spans: Vec<_> = report
            .obs
            .trace_records()
            .iter()
            .filter(|r| r.kind == dyno_obs::RecordKind::SpanStart && r.name == "view.maintain")
            .map(|r| r.ts_us)
            .collect();
        assert_eq!(spans.len() as u64, report.metrics.attempts);
        assert!(spans.windows(2).all(|w| w[0] <= w[1]), "virtual timestamps are monotone");
        assert!(spans.last().copied().unwrap_or(0) <= report.metrics.end_us);
    }

    #[test]
    fn simulated_costs_are_independent_of_the_exec_path() {
        // The paper figures' simulated-seconds series must be identical
        // whether maintenance queries probe secondary indexes or scan:
        // costs are charged from schema-level relation sizes, never from
        // the access path the in-process executor picked.
        for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
            let run = |indexes: bool| {
                let cfg = TestbedConfig { indexes, ..tiny_cfg() };
                let (space, view) = build_testbed(&cfg);
                let mut gen = WorkloadGen::new(cfg, 23);
                let mut schedule = gen.du_flood(12);
                schedule.extend(gen.sc_train(3, 2_000_000, 15_000_000));
                run_scenario(Scenario::new(space, view, schedule).with_strategy(strategy)).unwrap()
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.metrics, off.metrics, "{strategy:?}: identical simulated series");
            assert!(on.converged && off.converged);
        }
    }

    #[test]
    fn pessimistic_never_costs_more_aborts_than_optimistic_here() {
        // A flood of conflicting updates at t=0: pessimistic pre-exec
        // correction avoids every abort; optimistic must suffer at least one.
        let cfg = tiny_cfg();
        let mk = |strategy| {
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, 17);
            let mut schedule = gen.du_flood(5);
            schedule.extend(gen.sc_train(2, 0, 0));
            run_scenario(Scenario::new(space, view, schedule).with_strategy(strategy)).unwrap()
        };
        let p = mk(Strategy::Pessimistic);
        let o = mk(Strategy::Optimistic);
        assert_eq!(p.metrics.aborts, 0, "pre-exec detection sees the flooded SCs");
        assert!(o.metrics.aborts >= 1, "optimistic discovers conflicts the hard way");
        assert!(p.metrics.total_cost_us() <= o.metrics.total_cost_us());
        assert!(p.converged && o.converged);
    }
}
