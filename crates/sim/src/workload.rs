//! Workload generation for the Section 6 experiments.
//!
//! The generator tracks the evolving source schemas (renames, dropped
//! attributes) so that every scheduled commit is valid at its commit time —
//! exactly like autonomous sources, which always commit against their own
//! current schema.

use crate::rng::Rng;
use dyno_relational::{DataUpdate, Delta, Schema, SchemaChange, SourceUpdate, Tuple, Value};
use dyno_source::SourceId;

use crate::port::ScheduledCommit;
use crate::testbed::TestbedConfig;

/// What happens at one point of a workload timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A random single-tuple insert against a random relation.
    DataUpdate,
    /// A delete of a tuple previously inserted by this generator (skipped —
    /// degraded to an insert — when nothing has been inserted yet).
    DataDelete,
    /// A rename of a random relation (view-invalidating).
    RenameRelation,
    /// A drop of a random still-present non-key attribute
    /// (view-invalidating; pruned by VS since no replacement exists).
    DropAttribute,
    /// An added attribute with a default (never view-invalidating: exercises
    /// the flag-raised-but-no-reorder path).
    AddAttribute,
}

/// Tracks evolving schemas and materializes timelines into commit schedules.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    cfg: TestbedConfig,
    rng: Rng,
    /// Current name of relation `i`.
    names: Vec<String>,
    /// Non-key attributes still present on relation `i`.
    attrs: Vec<Vec<String>>,
    rename_serial: u64,
    /// Tuples this generator inserted and has not yet deleted, per relation
    /// index, stored with the schema arity they were committed under.
    live: Vec<Vec<Tuple>>,
}

impl WorkloadGen {
    /// A generator over the given testbed, seeded independently of the
    /// testbed's data seed.
    pub fn new(cfg: TestbedConfig, seed: u64) -> Self {
        let n = cfg.relation_count();
        let names = cfg.relation_names();
        let attrs =
            (0..n).map(|_| (1..=cfg.extra_attrs).map(|a| format!("A{a}")).collect()).collect();
        let live = vec![Vec::new(); n];
        WorkloadGen { cfg, rng: Rng::new(seed), names, attrs, rename_serial: 0, live }
    }

    /// The source hosting relation index `i`.
    fn source_of(&self, i: usize) -> SourceId {
        SourceId(i as u32 / self.cfg.relations_per_source)
    }

    /// Current schema of relation `i` (key + surviving attributes).
    fn current_schema(&self, i: usize) -> Schema {
        let mut attrs = vec![dyno_relational::Attribute::new("K", dyno_relational::AttrType::Int)];
        for a in &self.attrs[i] {
            attrs.push(dyno_relational::Attribute::new(a.clone(), dyno_relational::AttrType::Int));
        }
        Schema::new(self.names[i].clone(), attrs).expect("tracked attributes are unique")
    }

    /// Materializes one event at `at_us`.
    pub fn event(&mut self, at_us: u64, kind: EventKind) -> ScheduledCommit {
        match kind {
            EventKind::DataUpdate => self.data_update(at_us),
            EventKind::DataDelete => self.data_delete(at_us),
            EventKind::RenameRelation => self.rename_relation(at_us),
            EventKind::DropAttribute => self.drop_attribute(at_us),
            EventKind::AddAttribute => self.add_attribute(at_us),
        }
    }

    /// Materializes a whole timeline (must be sorted by time; the generator
    /// tracks schema evolution in that order).
    pub fn realize(&mut self, timeline: &[(u64, EventKind)]) -> Vec<ScheduledCommit> {
        debug_assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0), "timeline must be sorted");
        timeline.iter().map(|&(t, k)| self.event(t, k)).collect()
    }

    fn data_update(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        let schema = self.current_schema(i);
        let mut vals =
            vec![Value::from(self.rng.gen_range(0..self.cfg.tuples_per_relation as i64))];
        for _ in 0..schema.arity() - 1 {
            vals.push(Value::from(self.rng.gen_range(0..1_000_000i64)));
        }
        let tuple = Tuple::new(vals);
        self.live[i].push(tuple.clone());
        let delta =
            Delta::inserts(schema, [tuple]).expect("generated tuple matches tracked schema");
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        }
    }

    fn data_delete(&mut self, at_us: u64) -> ScheduledCommit {
        // Delete a tuple we inserted earlier, provided its relation's schema
        // has not changed since (otherwise the stored tuple no longer
        // matches); fall back to an insert when no such tuple exists.
        let candidates: Vec<usize> = (0..self.cfg.relation_count())
            .filter(|&i| {
                self.live[i].last().is_some_and(|t| t.arity() == self.current_schema(i).arity())
            })
            .collect();
        let Some(&i) = candidates.first() else {
            return self.data_update(at_us);
        };
        let tuple = self.live[i].pop().expect("candidate has a live tuple");
        let delta = Delta::deletes(self.current_schema(i), [tuple])
            .expect("tuple arity checked against current schema");
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        }
    }

    fn add_attribute(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        self.rename_serial += 1;
        let attr = format!("X{}", self.rename_serial);
        self.attrs[i].push(attr.clone());
        // Stored live tuples for this relation no longer match the widened
        // schema; forget them rather than fabricate defaults.
        self.live[i].clear();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::AddAttribute {
                relation: self.names[i].clone(),
                attr: dyno_relational::Attribute::new(attr, dyno_relational::AttrType::Int),
                default: Value::from(0),
            }),
        }
    }

    fn rename_relation(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        self.rename_serial += 1;
        let from = self.names[i].clone();
        let to = format!("R{i}_v{}", self.rename_serial);
        self.names[i] = to.clone();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::RenameRelation { from, to }),
        }
    }

    fn drop_attribute(&mut self, at_us: u64) -> ScheduledCommit {
        // Pick a relation that still has a non-key attribute to drop.
        let candidates: Vec<usize> =
            (0..self.cfg.relation_count()).filter(|&i| !self.attrs[i].is_empty()).collect();
        let i = candidates[self.rng.gen_range(0..candidates.len())];
        let pos = self.rng.gen_range(0..self.attrs[i].len());
        let attr = self.attrs[i].remove(pos);
        self.live[i].clear();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: self.names[i].clone(),
                attr,
            }),
        }
    }

    /// The Figure-8 workload: `n` data updates, all buffered at time zero.
    pub fn du_flood(&mut self, n: usize) -> Vec<ScheduledCommit> {
        (0..n).map(|_| self.data_update(0)).collect()
    }

    /// A stream of `n` data updates spaced `gap_us` apart starting at
    /// `start_us` (the mixed-workload experiments of Figures 10–12 trickle
    /// DUs throughout the run).
    pub fn du_stream(&mut self, n: usize, start_us: u64, gap_us: u64) -> Vec<ScheduledCommit> {
        (0..n).map(|k| self.data_update(start_us + k as u64 * gap_us)).collect()
    }

    /// The full mixed workload of Figures 10–12: a DU stream plus an SC
    /// train, generated in **chronological order** so every update targets
    /// the schema its source will actually have at commit time (a DU
    /// generated against a name a prior rename already retired could never
    /// be committed by a real source).
    pub fn mixed(
        &mut self,
        du_count: usize,
        du_gap_us: u64,
        sc_count: usize,
        sc_start_us: u64,
        sc_interval_us: u64,
    ) -> Vec<ScheduledCommit> {
        let mut timeline: Vec<(u64, EventKind)> =
            (0..du_count).map(|k| (k as u64 * du_gap_us, EventKind::DataUpdate)).collect();
        for k in 0..sc_count {
            let kind = if k == 0 { EventKind::DropAttribute } else { EventKind::RenameRelation };
            timeline.push((sc_start_us + k as u64 * sc_interval_us, kind));
        }
        timeline.sort_by_key(|e| e.0);
        self.realize(&timeline)
    }

    /// The Figures 10–12 schema-change train: one drop-attribute followed by
    /// `n - 1` rename-relation changes, spaced `interval_us` apart starting
    /// at `start_us` (paper Section 6.4).
    pub fn sc_train(&mut self, n: usize, start_us: u64, interval_us: u64) -> Vec<ScheduledCommit> {
        (0..n)
            .map(|k| {
                let at = start_us + k as u64 * interval_us;
                if k == 0 {
                    self.drop_attribute(at)
                } else {
                    self.rename_relation(at)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::build_space;

    fn cfg() -> TestbedConfig {
        TestbedConfig { tuples_per_relation: 100, ..Default::default() }
    }

    /// Every generated schedule must apply cleanly in time order — the
    /// generator's schema tracking matches the sources' evolution.
    #[test]
    fn schedules_apply_cleanly() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 7);
        let mut timeline = Vec::new();
        for k in 0..30 {
            timeline.push((k * 10, EventKind::DataUpdate));
        }
        timeline.push((95, EventKind::DropAttribute));
        timeline.push((155, EventKind::RenameRelation));
        timeline.push((255, EventKind::RenameRelation));
        timeline.sort_by_key(|e| e.0);
        let schedule = gen.realize(&timeline);
        for c in schedule {
            space.commit(c.source, c.update).expect("workload must be self-consistent");
        }
    }

    #[test]
    fn du_flood_is_all_at_zero() {
        let mut gen = WorkloadGen::new(cfg(), 1);
        let w = gen.du_flood(10);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|c| c.at_us == 0));
        assert!(w.iter().all(|c| !c.update.is_schema_change()));
    }

    #[test]
    fn sc_train_shape() {
        let mut gen = WorkloadGen::new(cfg(), 1);
        let w = gen.sc_train(5, 1_000, 25_000_000);
        assert_eq!(w.len(), 5);
        assert!(matches!(w[0].update, SourceUpdate::Schema(SchemaChange::DropAttribute { .. })));
        for c in &w[1..] {
            assert!(matches!(c.update, SourceUpdate::Schema(SchemaChange::RenameRelation { .. })));
        }
        assert_eq!(w[1].at_us - w[0].at_us, 25_000_000);
    }

    #[test]
    fn renames_chain_consistently() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 3);
        // Many renames: later renames of the same relation must start from
        // the previous new name.
        let timeline: Vec<(u64, EventKind)> =
            (0..40).map(|k| (k, EventKind::RenameRelation)).collect();
        for c in gen.realize(&timeline) {
            space.commit(c.source, c.update).expect("rename chains must be consistent");
        }
    }

    #[test]
    fn drop_attribute_exhaustion_moves_on() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 3);
        // 18 drops = every non-key attribute of all six relations.
        let timeline: Vec<(u64, EventKind)> =
            (0..18).map(|k| (k, EventKind::DropAttribute)).collect();
        for c in gen.realize(&timeline) {
            space.commit(c.source, c.update).expect("drops must target present attributes");
        }
    }
}
