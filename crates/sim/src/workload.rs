//! Workload generation for the Section 6 experiments.
//!
//! The generator tracks the evolving source schemas (renames, dropped
//! attributes) so that every scheduled commit is valid at its commit time —
//! exactly like autonomous sources, which always commit against their own
//! current schema.

use std::collections::BTreeMap;

use crate::rng::Rng;
use dyno_relational::{DataUpdate, Delta, Schema, SchemaChange, SourceUpdate, Tuple, Value};
use dyno_source::SourceId;

use crate::port::ScheduledCommit;
use crate::testbed::TestbedConfig;

/// What happens at one point of a workload timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A random single-tuple insert against a random relation.
    DataUpdate,
    /// A delete of a tuple previously inserted by this generator (skipped —
    /// degraded to an insert — when nothing has been inserted yet).
    DataDelete,
    /// A rename of a random relation (view-invalidating).
    RenameRelation,
    /// A drop of a random still-present non-key attribute
    /// (view-invalidating; pruned by VS since no replacement exists).
    DropAttribute,
    /// An added attribute with a default (never view-invalidating: exercises
    /// the flag-raised-but-no-reorder path).
    AddAttribute,
}

/// A deterministic Zipfian sampler over ranks `0..n` with exponent `s`:
/// rank `k` is drawn with probability proportional to `1/(k+1)^s`. Built as
/// a precomputed CDF + binary search, so sampling is `O(log n)` and exactly
/// reproducible from the PRNG stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n ≥ 1` ranks with skew `s ≥ 0` (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `0..n` using `rng`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = unit_f64(rng);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A uniform draw in `[0, 1)` from the workspace PRNG (53 mantissa bits).
fn unit_f64(rng: &mut Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Parameters of the open-loop generator ([`WorkloadGen::open_loop`]):
/// arrivals follow their own clock regardless of how far the warehouse has
/// fallen behind — the load shape a bounded UMQ and the staleness SLOs are
/// measured under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopConfig {
    /// Length of the generated arrival timeline, simulated µs.
    pub duration_us: u64,
    /// Mean data-update arrival rate, per simulated second.
    pub du_per_sec: f64,
    /// Zipf exponent for DU key choice (0 = uniform; ~1 = classic hot-key
    /// skew). Rank 0 maps to key 0, the hottest.
    pub zipf_skew: f64,
    /// Diurnal modulation amplitude in `[0, 1]`:
    /// `rate(t) = du_per_sec · (1 + a·sin(2πt/period))`.
    pub diurnal_amplitude: f64,
    /// Diurnal period, simulated µs.
    pub diurnal_period_us: u64,
    /// Number of schema-change storms, spread evenly over the run.
    pub sc_storms: usize,
    /// Renames per storm, all against the hot relation (`R0`'s lineage).
    pub sc_storm_len: usize,
    /// Gap between a storm's renames, simulated µs.
    pub sc_storm_gap_us: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            duration_us: 120_000_000,
            du_per_sec: 4.0,
            zipf_skew: 1.1,
            diurnal_amplitude: 0.6,
            diurnal_period_us: 30_000_000,
            sc_storms: 0,
            sc_storm_len: 3,
            sc_storm_gap_us: 2_000_000,
        }
    }
}

/// Tracks evolving schemas and materializes timelines into commit schedules.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    cfg: TestbedConfig,
    rng: Rng,
    /// Current name of relation `i`.
    names: Vec<String>,
    /// Non-key attributes still present on relation `i`.
    attrs: Vec<Vec<String>>,
    rename_serial: u64,
    /// Tuples this generator inserted and has not yet deleted, per relation
    /// index, stored with the schema arity they were committed under.
    live: Vec<Vec<Tuple>>,
    /// The open-loop generator's keyed rows, per relation index: the last
    /// tuple committed for each hot key, replaced (delete + insert) on the
    /// next update of the same key so multiplicities stay bounded.
    keyed: Vec<BTreeMap<i64, Tuple>>,
}

impl WorkloadGen {
    /// A generator over the given testbed, seeded independently of the
    /// testbed's data seed.
    pub fn new(cfg: TestbedConfig, seed: u64) -> Self {
        let n = cfg.relation_count();
        let names = cfg.relation_names();
        let attrs =
            (0..n).map(|_| (1..=cfg.extra_attrs).map(|a| format!("A{a}")).collect()).collect();
        let live = vec![Vec::new(); n];
        let keyed = vec![BTreeMap::new(); n];
        WorkloadGen { cfg, rng: Rng::new(seed), names, attrs, rename_serial: 0, live, keyed }
    }

    /// The source hosting relation index `i`.
    fn source_of(&self, i: usize) -> SourceId {
        SourceId(i as u32 / self.cfg.relations_per_source)
    }

    /// Current schema of relation `i` (key + surviving attributes).
    fn current_schema(&self, i: usize) -> Schema {
        let mut attrs = vec![dyno_relational::Attribute::new("K", dyno_relational::AttrType::Int)];
        for a in &self.attrs[i] {
            attrs.push(dyno_relational::Attribute::new(a.clone(), dyno_relational::AttrType::Int));
        }
        Schema::new(self.names[i].clone(), attrs).expect("tracked attributes are unique")
    }

    /// Materializes one event at `at_us`.
    pub fn event(&mut self, at_us: u64, kind: EventKind) -> ScheduledCommit {
        match kind {
            EventKind::DataUpdate => self.data_update(at_us),
            EventKind::DataDelete => self.data_delete(at_us),
            EventKind::RenameRelation => self.rename_relation(at_us),
            EventKind::DropAttribute => self.drop_attribute(at_us),
            EventKind::AddAttribute => self.add_attribute(at_us),
        }
    }

    /// Materializes a whole timeline (must be sorted by time; the generator
    /// tracks schema evolution in that order).
    pub fn realize(&mut self, timeline: &[(u64, EventKind)]) -> Vec<ScheduledCommit> {
        debug_assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0), "timeline must be sorted");
        timeline.iter().map(|&(t, k)| self.event(t, k)).collect()
    }

    fn data_update(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        let schema = self.current_schema(i);
        let mut vals =
            vec![Value::from(self.rng.gen_range(0..self.cfg.tuples_per_relation as i64))];
        for _ in 0..schema.arity() - 1 {
            vals.push(Value::from(self.rng.gen_range(0..1_000_000i64)));
        }
        let tuple = Tuple::new(vals);
        self.live[i].push(tuple.clone());
        let delta =
            Delta::inserts(schema, [tuple]).expect("generated tuple matches tracked schema");
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        }
    }

    fn data_delete(&mut self, at_us: u64) -> ScheduledCommit {
        // Delete a tuple we inserted earlier, provided its relation's schema
        // has not changed since (otherwise the stored tuple no longer
        // matches); fall back to an insert when no such tuple exists.
        let candidates: Vec<usize> = (0..self.cfg.relation_count())
            .filter(|&i| {
                self.live[i].last().is_some_and(|t| t.arity() == self.current_schema(i).arity())
            })
            .collect();
        let Some(&i) = candidates.first() else {
            return self.data_update(at_us);
        };
        let tuple = self.live[i].pop().expect("candidate has a live tuple");
        let delta = Delta::deletes(self.current_schema(i), [tuple])
            .expect("tuple arity checked against current schema");
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        }
    }

    fn add_attribute(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        self.rename_serial += 1;
        let attr = format!("X{}", self.rename_serial);
        self.attrs[i].push(attr.clone());
        // Stored live tuples for this relation no longer match the widened
        // schema; forget them rather than fabricate defaults.
        self.live[i].clear();
        self.keyed[i].clear();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::AddAttribute {
                relation: self.names[i].clone(),
                attr: dyno_relational::Attribute::new(attr, dyno_relational::AttrType::Int),
                default: Value::from(0),
            }),
        }
    }

    fn rename_relation(&mut self, at_us: u64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        self.rename_serial += 1;
        let from = self.names[i].clone();
        let to = format!("R{i}_v{}", self.rename_serial);
        self.names[i] = to.clone();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::RenameRelation { from, to }),
        }
    }

    fn drop_attribute(&mut self, at_us: u64) -> ScheduledCommit {
        // Pick a relation that still has a non-key attribute to drop.
        let candidates: Vec<usize> =
            (0..self.cfg.relation_count()).filter(|&i| !self.attrs[i].is_empty()).collect();
        let i = candidates[self.rng.gen_range(0..candidates.len())];
        let pos = self.rng.gen_range(0..self.attrs[i].len());
        let attr = self.attrs[i].remove(pos);
        self.live[i].clear();
        self.keyed[i].clear();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: self.names[i].clone(),
                attr,
            }),
        }
    }

    /// The Figure-8 workload: `n` data updates, all buffered at time zero.
    pub fn du_flood(&mut self, n: usize) -> Vec<ScheduledCommit> {
        (0..n).map(|_| self.data_update(0)).collect()
    }

    /// A stream of `n` data updates spaced `gap_us` apart starting at
    /// `start_us` (the mixed-workload experiments of Figures 10–12 trickle
    /// DUs throughout the run).
    pub fn du_stream(&mut self, n: usize, start_us: u64, gap_us: u64) -> Vec<ScheduledCommit> {
        (0..n).map(|k| self.data_update(start_us + k as u64 * gap_us)).collect()
    }

    /// The full mixed workload of Figures 10–12: a DU stream plus an SC
    /// train, generated in **chronological order** so every update targets
    /// the schema its source will actually have at commit time (a DU
    /// generated against a name a prior rename already retired could never
    /// be committed by a real source).
    pub fn mixed(
        &mut self,
        du_count: usize,
        du_gap_us: u64,
        sc_count: usize,
        sc_start_us: u64,
        sc_interval_us: u64,
    ) -> Vec<ScheduledCommit> {
        let mut timeline: Vec<(u64, EventKind)> =
            (0..du_count).map(|k| (k as u64 * du_gap_us, EventKind::DataUpdate)).collect();
        for k in 0..sc_count {
            let kind = if k == 0 { EventKind::DropAttribute } else { EventKind::RenameRelation };
            timeline.push((sc_start_us + k as u64 * sc_interval_us, kind));
        }
        timeline.sort_by_key(|e| e.0);
        self.realize(&timeline)
    }

    /// A keyed **upsert** against a uniformly chosen relation: the new
    /// tuple for `key` (the Zipf rank picked by the open-loop generator) is
    /// inserted and the previous generator-committed tuple for the same key
    /// is deleted in the same delta. Hot keys therefore model a
    /// frequently-rewritten row, and join multiplicities stay bounded — a
    /// pure-insert hot key would multiply the testbed's n-way join output
    /// combinatorially.
    fn data_update_keyed(&mut self, at_us: u64, key: i64) -> ScheduledCommit {
        let i = self.rng.gen_range(0..self.cfg.relation_count());
        let schema = self.current_schema(i);
        let mut vals = vec![Value::from(key)];
        for _ in 0..schema.arity() - 1 {
            vals.push(Value::from(self.rng.gen_range(0..1_000_000i64)));
        }
        let tuple = Tuple::new(vals);
        let mut rows = vec![(tuple.clone(), 1i64)];
        if let Some(prev) = self.keyed[i].insert(key, tuple) {
            // A schema change since the previous write invalidates the
            // stored tuple; only delete it when it still matches.
            if prev.arity() == schema.arity() {
                rows.push((prev, -1));
            }
        }
        let delta = Delta::from_rows(schema, rows).expect("generated tuples match tracked schema");
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        }
    }

    /// A rename of a **specific** relation index (the open-loop generator's
    /// hot-key SC storms always hit the hot relation's lineage).
    fn rename_of(&mut self, at_us: u64, i: usize) -> ScheduledCommit {
        self.rename_serial += 1;
        let from = self.names[i].clone();
        let to = format!("R{i}_v{}", self.rename_serial);
        self.names[i] = to.clone();
        ScheduledCommit {
            at_us,
            source: self.source_of(i),
            update: SourceUpdate::Schema(SchemaChange::RenameRelation { from, to }),
        }
    }

    /// The open-loop monitor workload (DESIGN.md §14): Poisson DU arrivals
    /// whose rate follows a diurnal sine, keys drawn Zipfian (rank 0 = the
    /// hot key), plus `sc_storms` evenly spaced rename trains against the
    /// hot relation (index 0). Arrivals are generated and materialized in
    /// chronological order, so every commit targets the schema its source
    /// actually has at commit time. Deterministic for a given seed.
    pub fn open_loop(&mut self, olc: &OpenLoopConfig) -> Vec<ScheduledCommit> {
        assert!(olc.du_per_sec > 0.0, "open loop needs a positive arrival rate");
        assert!(
            (0.0..=1.0).contains(&olc.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1]"
        );
        let zipf = Zipf::new(self.cfg.tuples_per_relation.max(1), olc.zipf_skew);
        // (at_us, Some(key) = DU | None = hot-relation rename)
        let mut events: Vec<(u64, Option<i64>)> = Vec::new();
        let base_per_us = olc.du_per_sec / 1_000_000.0;
        let mut t = 0.0f64;
        loop {
            // Thinning-free approximation: step with the rate at the current
            // instant. The trough rate is floored at 5% of base so a full
            // amplitude cannot stall the stream forever.
            let phase = if olc.diurnal_period_us == 0 {
                0.0
            } else {
                2.0 * std::f64::consts::PI * t / olc.diurnal_period_us as f64
            };
            let rate =
                (base_per_us * (1.0 + olc.diurnal_amplitude * phase.sin())).max(base_per_us * 0.05);
            let u = unit_f64(&mut self.rng);
            t += -(1.0 - u).ln() / rate;
            if t >= olc.duration_us as f64 {
                break;
            }
            events.push((t as u64, Some(zipf.sample(&mut self.rng) as i64)));
        }
        for s in 0..olc.sc_storms {
            let center = olc.duration_us * (s as u64 + 1) / (olc.sc_storms as u64 + 1);
            for j in 0..olc.sc_storm_len {
                events.push((center + j as u64 * olc.sc_storm_gap_us, None));
            }
        }
        // Stable sort: at equal instants DUs (generated first) precede the
        // storm's renames, matching a source that commits data before it
        // evolves its schema.
        events.sort_by_key(|e| e.0);
        events
            .into_iter()
            .map(|(at, ev)| match ev {
                Some(key) => self.data_update_keyed(at, key),
                None => self.rename_of(at, 0),
            })
            .collect()
    }

    /// The Figures 10–12 schema-change train: one drop-attribute followed by
    /// `n - 1` rename-relation changes, spaced `interval_us` apart starting
    /// at `start_us` (paper Section 6.4).
    pub fn sc_train(&mut self, n: usize, start_us: u64, interval_us: u64) -> Vec<ScheduledCommit> {
        (0..n)
            .map(|k| {
                let at = start_us + k as u64 * interval_us;
                if k == 0 {
                    self.drop_attribute(at)
                } else {
                    self.rename_relation(at)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::build_space;

    fn cfg() -> TestbedConfig {
        TestbedConfig { tuples_per_relation: 100, ..Default::default() }
    }

    /// Every generated schedule must apply cleanly in time order — the
    /// generator's schema tracking matches the sources' evolution.
    #[test]
    fn schedules_apply_cleanly() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 7);
        let mut timeline = Vec::new();
        for k in 0..30 {
            timeline.push((k * 10, EventKind::DataUpdate));
        }
        timeline.push((95, EventKind::DropAttribute));
        timeline.push((155, EventKind::RenameRelation));
        timeline.push((255, EventKind::RenameRelation));
        timeline.sort_by_key(|e| e.0);
        let schedule = gen.realize(&timeline);
        for c in schedule {
            space.commit(c.source, c.update).expect("workload must be self-consistent");
        }
    }

    #[test]
    fn du_flood_is_all_at_zero() {
        let mut gen = WorkloadGen::new(cfg(), 1);
        let w = gen.du_flood(10);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|c| c.at_us == 0));
        assert!(w.iter().all(|c| !c.update.is_schema_change()));
    }

    #[test]
    fn sc_train_shape() {
        let mut gen = WorkloadGen::new(cfg(), 1);
        let w = gen.sc_train(5, 1_000, 25_000_000);
        assert_eq!(w.len(), 5);
        assert!(matches!(w[0].update, SourceUpdate::Schema(SchemaChange::DropAttribute { .. })));
        for c in &w[1..] {
            assert!(matches!(c.update, SourceUpdate::Schema(SchemaChange::RenameRelation { .. })));
        }
        assert_eq!(w[1].at_us - w[0].at_us, 25_000_000);
    }

    #[test]
    fn renames_chain_consistently() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 3);
        // Many renames: later renames of the same relation must start from
        // the previous new name.
        let timeline: Vec<(u64, EventKind)> =
            (0..40).map(|k| (k, EventKind::RenameRelation)).collect();
        for c in gen.realize(&timeline) {
            space.commit(c.source, c.update).expect("rename chains must be consistent");
        }
    }

    /// The empirical log-frequency / log-rank slope of the Zipf sampler must
    /// sit near `-s` over the head ranks (the tail is too sparse to fit).
    #[test]
    fn zipf_frequency_rank_slope_matches_skew() {
        let s = 1.25;
        let zipf = Zipf::new(300, s);
        let mut rng = Rng::new(7);
        let mut counts = vec![0u64; 300];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must dominate");
        // Least-squares fit of ln(count) against ln(rank+1) over the head.
        let pts: Vec<(f64, f64)> = (0..20)
            .filter(|&k| counts[k] > 0)
            .map(|k| (((k + 1) as f64).ln(), (counts[k] as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (slope + s).abs() < 0.25,
            "fitted slope {slope:.3} should be within 0.25 of {:.3}",
            -s
        );
    }

    /// Same seed → byte-identical arrival schedule; a different seed moves
    /// the arrivals. Compared through a raw `Debug` of the whole schedule:
    /// `SignedBag` is a `ZSet` over a `BTreeMap`, so its iteration (and
    /// `Debug`) order is sorted and instance-independent — byte-stable even
    /// on upsert deltas (two rows), with no canonicalization step needed.
    #[test]
    fn open_loop_is_deterministic_by_seed() {
        fn canon(schedule: &[ScheduledCommit]) -> String {
            format!("{schedule:#?}")
        }
        let olc = OpenLoopConfig {
            duration_us: 5_000_000,
            du_per_sec: 40.0,
            sc_storms: 2,
            ..Default::default()
        };
        let a = canon(&WorkloadGen::new(cfg(), 11).open_loop(&olc));
        let b = canon(&WorkloadGen::new(cfg(), 11).open_loop(&olc));
        assert_eq!(a, b, "same seed, same schedule");
        let c = canon(&WorkloadGen::new(cfg(), 12).open_loop(&olc));
        assert_ne!(a, c, "different seed, different schedule");
    }

    /// The open-loop schedule is sorted, carries the configured number of
    /// storm renames, and applies cleanly against the space (the generator's
    /// schema tracking survives interleaved storms).
    #[test]
    fn open_loop_schedule_applies_cleanly() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 5);
        let olc = OpenLoopConfig {
            duration_us: 10_000_000,
            du_per_sec: 20.0,
            sc_storms: 3,
            sc_storm_len: 2,
            ..Default::default()
        };
        let schedule = gen.open_loop(&olc);
        assert!(schedule.windows(2).all(|w| w[0].at_us <= w[1].at_us), "sorted by time");
        let scs = schedule.iter().filter(|c| c.update.is_schema_change()).count();
        assert_eq!(scs, 6, "3 storms × 2 renames");
        assert!(schedule.len() > 100, "open loop should produce a dense DU stream");
        for c in schedule {
            space.commit(c.source, c.update).expect("open-loop schedule must be self-consistent");
        }
    }

    /// Diurnal modulation concentrates arrivals near the sine peak: the
    /// quarter-period around the peak must out-arrive the one at the trough.
    #[test]
    fn open_loop_diurnal_peak_beats_trough() {
        let period = 8_000_000u64;
        let olc = OpenLoopConfig {
            duration_us: period,
            du_per_sec: 100.0,
            diurnal_amplitude: 0.9,
            diurnal_period_us: period,
            sc_storms: 0,
            ..Default::default()
        };
        let schedule = WorkloadGen::new(cfg(), 21).open_loop(&olc);
        // Peak of sin(2πt/P) is at t = P/4; trough at t = 3P/4.
        let around = |center: u64| {
            schedule
                .iter()
                .filter(|c| {
                    c.at_us >= center.saturating_sub(period / 8) && c.at_us < center + period / 8
                })
                .count()
        };
        let peak = around(period / 4);
        let trough = around(3 * period / 4);
        assert!(
            peak > trough * 2,
            "peak quarter ({peak}) should carry at least twice the trough quarter ({trough})"
        );
    }

    #[test]
    fn drop_attribute_exhaustion_moves_on() {
        let cfg = cfg();
        let mut space = build_space(&cfg);
        let mut gen = WorkloadGen::new(cfg, 3);
        // 18 drops = every non-key attribute of all six relations.
        let timeline: Vec<(u64, EventKind)> =
            (0..18).map(|k| (k, EventKind::DropAttribute)).collect();
        for c in gen.realize(&timeline) {
            space.commit(c.source, c.update).expect("drops must target present attributes");
        }
    }
}
