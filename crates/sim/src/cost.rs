//! The simulated cost model.
//!
//! The paper's testbed was four Pentium-III PCs running Oracle8i over JDBC;
//! its reported costs are wall-clock seconds. We replace the hardware with a
//! deterministic virtual clock: every interaction with a source charges
//! simulated time, calibrated so the two characteristic magnitudes match the
//! paper's —
//!
//! * maintaining one **data update** costs a few hundred milliseconds
//!   (paper Figure 8: ≈0.23 s/DU — 3000 DUs ≈ 700 s);
//! * maintaining one **schema change** costs tens of seconds
//!   (paper Figures 9–11: SC maintenance ≈ 25–60 s; the Figure 10 abort
//!   peak sits where the inter-SC interval ≈ one SC maintenance time,
//!   i.e. in the 17–29 s band).
//!
//! The shape of every experiment (who wins, where the peak falls) depends on
//! these magnitudes and on *when commits land relative to maintenance*, not
//! on Oracle's absolute throughput — which is why the substitution preserves
//! the phenomena under study.

/// Cost parameters, all in microseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Round-trip latency per maintenance query shipped to a source.
    pub query_latency_us: u64,
    /// Source-side cost per tuple scanned while answering a query.
    pub scan_tuple_us: u64,
    /// Transfer + integration cost per result tuple shipped back.
    pub result_tuple_us: u64,
    /// View-manager-local computation per tuple (compensation joins,
    /// Equation-6 terms, dependency bookkeeping).
    pub local_tuple_us: u64,
    /// Fixed view-synchronization (definition rewriting) cost per schema
    /// change in a batch.
    pub vs_rewrite_us: u64,
    /// Cost per tuple written into the materialized view on commit.
    pub mv_write_tuple_us: u64,
}

impl Default for CostModel {
    /// Calibrated against the paper's magnitudes for the default testbed
    /// scale (six relations; see `testbed::TestbedConfig`):
    /// DU ≈ 0.25 s (5 queries × (40 ms latency + 10 ms scan)), SC ≈ 25 s
    /// (dominated by re-fetching every relation's extent for adaptation).
    fn default() -> Self {
        CostModel {
            query_latency_us: 40_000, // 40 ms
            scan_tuple_us: 1,
            result_tuple_us: 400,
            local_tuple_us: 1,
            vs_rewrite_us: 500_000, // 0.5 s
            mv_write_tuple_us: 100,
        }
    }
}

impl CostModel {
    /// A model calibrated for an arbitrary testbed scale: the shipping
    /// rate is chosen so that re-fetching one relation's extent costs ≈ 4
    /// simulated seconds regardless of the tuple count, keeping one
    /// schema-change maintenance at ≈ 25 s and one data update at ≈ 0.25 s
    /// — the paper's magnitudes — at any `tuples_per_relation`.
    pub fn calibrated(tuples_per_relation: u64) -> Self {
        CostModel {
            result_tuple_us: (4_000_000 / tuples_per_relation.max(1)).max(1),
            ..CostModel::default()
        }
    }

    /// A zero-cost model (untimed semantics checks).
    pub fn free() -> Self {
        CostModel {
            query_latency_us: 0,
            scan_tuple_us: 0,
            result_tuple_us: 0,
            local_tuple_us: 0,
            vs_rewrite_us: 0,
            mv_write_tuple_us: 0,
        }
    }

    /// Cost of one query: latency + scan + shipping.
    pub fn query_cost_us(&self, scanned: u64, result: u64) -> u64 {
        self.query_latency_us + scanned * self.scan_tuple_us + result * self.result_tuple_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_magnitudes_match_paper() {
        let c = CostModel::default();
        // One DU over the 6-relation testbed at 10k tuples/relation:
        // 5 queries, each scanning one relation, shipping ~1 tuple.
        let du = 5 * c.query_cost_us(10_000, 1);
        assert!((200_000..400_000).contains(&du), "DU ≈ 0.2–0.4 s, got {du} µs");
        // One SC: VS + fetching all six relations (result = full extent).
        let sc = c.vs_rewrite_us + 6 * c.query_cost_us(10_000, 10_000);
        assert!((15_000_000..40_000_000).contains(&sc), "SC ≈ 15–40 s, got {sc} µs");
        // The ratio is what the experiments depend on: SC ≫ DU.
        assert!(sc / du > 50);
    }

    #[test]
    fn calibrated_is_scale_invariant() {
        for n in [1_000u64, 10_000, 100_000] {
            let c = CostModel::calibrated(n);
            let sc = c.vs_rewrite_us + 6 * c.query_cost_us(n, n);
            assert!(
                (15_000_000..45_000_000).contains(&sc),
                "SC ≈ 15–45 s at scale {n}, got {sc} µs"
            );
        }
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::free();
        assert_eq!(c.query_cost_us(1_000_000, 1_000_000), 0);
    }
}
