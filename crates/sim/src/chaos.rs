//! The seeded chaos runner: [`run_scenario`](crate::runner::run_scenario)'s
//! sibling that routes the whole warehouse/source conversation through a
//! [`ChaosTransport`], exercising the recovery machinery of
//! [`dyno_view::FaultedPort`] under deterministic fault injection.
//!
//! A chaos run is reproducible from `(profile, seed)` alone: the transport's
//! fault rolls, the workload, the retry jitter, and the discrete-event clock
//! are all derived from them. The driver differs from the fault-free runner
//! in two ways:
//!
//! * **Parked entries** (a source down past the retry budget) do not end the
//!   run — simulated time advances to the next transport event (delivery
//!   falling due, source restart) or scheduled commit, and the scheduler
//!   retries the head.
//! * **Quiescence needs a flush**: messages the transport dropped are
//!   withheld until NACKed, so when no future event remains the driver
//!   force-flushes the transport once before declaring the run over.

use dyno_core::{CorrectionPolicy, StepOutcome, Strategy};
use dyno_fault::{ChaosTransport, FaultProfile, RetryPolicy};
use dyno_obs::Collector;
use dyno_view::engine::SourcePort;
use dyno_view::{FaultedPort, ViewManager};

use crate::consistency::{check_convergence, check_reflected};
use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::port::SimPort;
use crate::testbed::{build_testbed, TestbedConfig};
use crate::workload::WorkloadGen;

/// One chaos experiment. Everything is derived from `(profile, seed)` plus
/// the explicit knobs, so a failing configuration can be replayed exactly.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault intensities.
    pub profile: FaultProfile,
    /// Master seed: workload, transport rolls, and retry jitter derive
    /// from it.
    pub seed: u64,
    /// Detection strategy.
    pub strategy: Strategy,
    /// Correction policy.
    pub policy: CorrectionPolicy,
    /// Query-retry policy.
    pub retry: RetryPolicy,
    /// Disables BOTH dedupe/resequencing lines (transport recovery and the
    /// UMQ ingress gate) — the deliberately broken configuration the chaos
    /// suite must detect as non-convergent.
    pub break_dedupe: bool,
    /// Data updates to schedule.
    pub du_count: usize,
    /// Schema changes to schedule.
    pub sc_count: usize,
    /// Testbed scale.
    pub tuples_per_relation: usize,
    /// Audit strong consistency ([`check_reflected`]) after every commit.
    pub audit: bool,
    /// Maintenance-step budget (committed/aborted/parked steps).
    pub max_steps: u64,
    /// Capture per-update provenance (`ChaosReport::obs` then answers
    /// `explain(id)` queries and exports the lineage as JSONL).
    pub lineage: bool,
    /// Turn the per-operator cost profiler on for the run
    /// (`ChaosReport::obs.profile_snapshot()` then holds the plan trees).
    pub op_profile: bool,
}

impl ChaosConfig {
    /// A small-but-representative chaos run: 12 DUs + 3 SCs over a
    /// 200-tuple testbed, audited, pessimistic with default correction.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        ChaosConfig {
            profile,
            seed,
            strategy: Strategy::Pessimistic,
            policy: CorrectionPolicy::default(),
            retry: RetryPolicy::default(),
            break_dedupe: false,
            du_count: 12,
            sc_count: 3,
            tuples_per_relation: 200,
            audit: true,
            max_steps: 5_000,
            lineage: false,
            op_profile: false,
        }
    }

    /// Enables per-update provenance capture.
    pub fn with_lineage(mut self) -> Self {
        self.lineage = true;
        self
    }

    /// Enables the per-operator cost profiler for the run.
    pub fn with_profile(mut self) -> Self {
        self.op_profile = true;
        self
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the correction policy.
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Disables the recovery lines (ablation; see [`ChaosConfig::break_dedupe`]).
    pub fn broken_dedupe(mut self) -> Self {
        self.break_dedupe = true;
        self
    }
}

/// What a chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Whether the final extent matches the view over final source states.
    /// `false` whenever the run exhausted its budget or died on a hard
    /// error (see [`ChaosReport::last_error`]).
    pub converged: bool,
    /// Strong-consistency audit failures.
    pub audit_violations: u64,
    /// Committed + aborted + parked steps.
    pub steps: u64,
    /// Steps that parked on an unavailable source.
    pub parked_steps: u64,
    /// Whether the step budget ran out before quiescence.
    pub exhausted: bool,
    /// Total faults the transport injected.
    pub fault_injected: u64,
    /// Redelivered copies dropped across both dedupe lines.
    pub duplicates_dropped: u64,
    /// Query retry attempts.
    pub retry_attempts: u64,
    /// Queries that exhausted their retry policy (each parks an entry).
    pub retry_exhausted: u64,
    /// A hard maintenance error that ended the run, if any.
    pub last_error: Option<String>,
    /// Final materialized extent size.
    pub final_mv_len: u64,
    /// Simulated-time metrics.
    pub metrics: Metrics,
    /// The run's collector (`fault.*`, `retry.*`, `sim.*`, `dyno.*`, …).
    pub obs: Collector,
}

/// Runs one seeded chaos experiment to quiescence (or budget/hard error).
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let tb = TestbedConfig { tuples_per_relation: cfg.tuples_per_relation, ..Default::default() };
    let (space, view) = build_testbed(&tb);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(tb, cfg.seed);
    let mut schedule = gen.du_flood(cfg.du_count);
    if cfg.sc_count > 0 {
        schedule.extend(gen.sc_train(cfg.sc_count, 1_000_000, 20_000_000));
    }

    let mut port = SimPort::new(space, schedule, CostModel::default());
    let obs =
        if cfg.lineage { port.obs().clone().with_lineage(64 * 1024) } else { port.obs().clone() };
    if cfg.op_profile {
        obs.set_profile(true);
    }
    let mut mgr = ViewManager::new(view, info, cfg.strategy)
        .with_obs(obs.clone())
        .with_correction(cfg.policy);
    if cfg.break_dedupe {
        mgr = mgr.with_ingest_dedupe(false);
    }
    mgr.initialize(&mut port).expect("testbed initialization runs fault-free");
    port.start_metering();

    // Wrap after initialize: the baseline versions are already reflected and
    // must not be refetched.
    let baseline = port.space().versions();
    let transport = ChaosTransport::new(cfg.profile, cfg.seed).with_obs(&obs);
    let mut fport = FaultedPort::new(port, transport, baseline)
        .with_retry(cfg.retry)
        .with_seed(cfg.seed ^ 0x9e37_79b9_7f4a_7c15)
        .with_obs(&obs);
    if cfg.break_dedupe {
        fport = fport.with_recovery(false);
    }

    let mut steps = 0u64;
    let mut parked_steps = 0u64;
    let mut audit_violations = 0u64;
    let mut exhausted = false;
    let mut last_error: Option<String> = None;
    let mut flushed = false;
    // Idle/parked iterations do not count as steps, so bound raw iterations
    // separately against driver bugs.
    let mut iters = 0u64;
    let iter_budget = cfg.max_steps.saturating_mul(20).max(100_000);

    loop {
        iters += 1;
        if steps >= cfg.max_steps || iters >= iter_budget {
            exhausted = true;
            break;
        }
        // The earliest moment anything changes on its own: a scheduled
        // source commit, or a transport event (delayed delivery falling
        // due, crashed source restarting).
        let next_event = |f: &FaultedPort<SimPort, ChaosTransport>| -> Option<u64> {
            match (f.inner().next_commit_at_us(), f.next_wakeup_us()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        match mgr.step(&mut fport) {
            Err(e) => {
                last_error = Some(e.to_string());
                break;
            }
            Ok(StepOutcome::Idle) => match next_event(&fport) {
                Some(t) => {
                    let now = fport.now_us();
                    fport.inner_mut().advance_to(t.max(now + 1));
                    flushed = false;
                }
                None if !flushed => {
                    // Nothing will ever fall due on its own; whatever the
                    // transport still withholds (drops) is only recoverable
                    // by a quiescence flush.
                    fport.flush_all();
                    flushed = true;
                }
                None => break,
            },
            Ok(StepOutcome::Committed) => {
                steps += 1;
                flushed = false;
                if cfg.audit {
                    let ok = check_reflected(
                        fport.inner().space(),
                        mgr.view(),
                        mgr.reflected(),
                        mgr.mv(),
                    )
                    .unwrap_or(false);
                    if !ok {
                        audit_violations += 1;
                    }
                }
            }
            Ok(StepOutcome::Aborted) => {
                steps += 1;
                flushed = false;
            }
            Ok(StepOutcome::Parked) => {
                steps += 1;
                parked_steps += 1;
                flushed = false;
                // Let simulated time pass before the retry: to the next
                // transport event if one is pending, otherwise a fixed
                // 1-second think so the next fault rolls differ.
                let now = fport.now_us();
                let t = next_event(&fport).unwrap_or(now + 1_000_000);
                fport.inner_mut().advance_to(t.max(now + 1));
            }
            Ok(StepOutcome::Failed) => unreachable!("manager.step surfaces failures as Err"),
        }
    }

    let converged = last_error.is_none()
        && !exhausted
        && check_convergence(fport.inner().space(), mgr.view(), mgr.mv()).unwrap_or(false);
    let reg = obs.registry();
    let counter = |name: &str| reg.counter_value(name).unwrap_or(0);
    ChaosReport {
        converged,
        audit_violations,
        steps,
        parked_steps,
        exhausted,
        fault_injected: fport.injected_total(),
        duplicates_dropped: counter("fault.duplicates_dropped"),
        retry_attempts: counter("retry.attempts"),
        retry_exhausted: counter("retry.exhausted"),
        last_error,
        final_mv_len: mgr.mv().len(),
        metrics: fport.inner().metrics(),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scenario, Scenario};

    #[test]
    fn direct_transport_keeps_simulated_series_bit_identical() {
        // Acceptance gate: wrapping the SimPort in a FaultedPort with the
        // Direct transport must not perturb the simulated-seconds figures
        // at all — same workload, same clock, same metrics, bit for bit.
        let tb = TestbedConfig { tuples_per_relation: 200, ..Default::default() };
        let mk = || {
            let (space, view) = build_testbed(&tb);
            let mut gen = WorkloadGen::new(tb, 23);
            let mut schedule = gen.du_flood(12);
            schedule.extend(gen.sc_train(3, 2_000_000, 15_000_000));
            (space, view, schedule)
        };

        let bare = {
            let (space, view, schedule) = mk();
            run_scenario(Scenario::new(space, view, schedule)).unwrap()
        };
        assert!(bare.converged);

        let (space, view, schedule) = mk();
        let info = space.info().clone();
        let mut port = SimPort::new(space, schedule, CostModel::default());
        let mut mgr = ViewManager::new(view, info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        port.start_metering();
        let baseline = port.space().versions();
        let mut fport = FaultedPort::new(port, dyno_fault::Direct, baseline);
        loop {
            if mgr.step(&mut fport).unwrap() == StepOutcome::Idle
                && !fport.inner_mut().advance_to_next_commit()
            {
                break;
            }
        }
        assert!(check_convergence(fport.inner().space(), mgr.view(), mgr.mv()).unwrap());
        assert_eq!(fport.injected_total(), 0);
        assert_eq!(bare.metrics, fport.inner().metrics(), "bit-identical series");
    }

    #[test]
    fn quiet_profile_behaves_like_the_fault_free_runner() {
        let report = run_chaos(&ChaosConfig::new(FaultProfile::quiet(), 42));
        assert!(report.converged, "no faults, must converge");
        assert_eq!(report.audit_violations, 0);
        assert_eq!(report.fault_injected, 0);
        assert_eq!(report.parked_steps, 0);
        assert!(report.last_error.is_none());
    }

    #[test]
    fn drop_dup_run_converges_and_injects() {
        let report = run_chaos(&ChaosConfig::new(FaultProfile::drop_dup(), 7));
        assert!(report.converged, "recovery must mask drops and duplicates");
        assert_eq!(report.audit_violations, 0);
        assert!(report.fault_injected > 0, "the profile actually fired");
    }

    #[test]
    fn chaos_runs_are_deterministic_by_seed() {
        let run = || run_chaos(&ChaosConfig::new(FaultProfile::reorder_delay(), 19));
        let a = run();
        let b = run();
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fault_injected, b.fault_injected);
        assert_eq!(a.metrics, b.metrics, "bit-identical simulated series");
    }

    #[test]
    fn crash_profile_parks_and_recovers() {
        let mut parked_somewhere = false;
        for seed in [3, 5, 9] {
            let report = run_chaos(&ChaosConfig::new(FaultProfile::crash_restart(), seed));
            assert!(report.converged, "seed {seed}: crashes must be waited out");
            assert_eq!(report.audit_violations, 0, "seed {seed}");
            parked_somewhere |= report.parked_steps > 0;
        }
        // Individual seeds may ride out every crash inside the retry
        // budget; across a few seeds at least one park is expected.
        let _ = parked_somewhere;
    }
}
