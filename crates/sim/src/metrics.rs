//! Run metrics: what the paper's y-axes measure.

/// Accumulated simulated-time metrics for one run.
///
/// "Maintenance cost" follows the paper's convention (Section 6.3,
/// footnote 4): it **includes** abort cost — time spent on maintenance work
/// that was later discarded because a query broke.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Simulated time spent in maintenance that committed (µs).
    pub committed_us: u64,
    /// Simulated time spent in maintenance that was aborted — the paper's
    /// *abort cost* (µs).
    pub abort_us: u64,
    /// Committed time attributable to entries containing schema changes.
    pub committed_sc_us: u64,
    /// Aborted time from entries containing schema changes.
    pub abort_sc_us: u64,
    /// Number of maintenance queries executed.
    pub queries: u64,
    /// Number of aborts (broken queries suffered).
    pub aborts: u64,
    /// Maintenance attempts begun.
    pub attempts: u64,
    /// Scheduled source commits that could not be applied (workload bugs —
    /// should stay zero).
    pub skipped_commits: u64,
    /// Simulated end-to-end completion time (µs from run start).
    pub end_us: u64,
}

impl Metrics {
    /// Total maintenance cost in µs (committed + aborted work), the paper's
    /// primary y-axis.
    pub fn total_cost_us(&self) -> u64 {
        self.committed_us + self.abort_us
    }

    /// Total maintenance cost in seconds.
    pub fn total_cost_s(&self) -> f64 {
        self.total_cost_us() as f64 / 1e6
    }

    /// Abort cost in seconds.
    pub fn abort_s(&self) -> f64 {
        self.abort_us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = Metrics { committed_us: 2_000_000, abort_us: 500_000, ..Default::default() };
        assert_eq!(m.total_cost_us(), 2_500_000);
        assert!((m.total_cost_s() - 2.5).abs() < 1e-9);
        assert!((m.abort_s() - 0.5).abs() < 1e-9);
    }
}
