//! The monitored open-loop runner (DESIGN.md §14): drives a multi-view
//! [`Warehouse`](dyno_view::Warehouse) with the
//! [`open_loop`](crate::workload::WorkloadGen::open_loop) workload while a
//! [`Sampler`] snapshots the metrics registry and a [`StalenessTracker`]
//! measures per-view end-to-end staleness against an SLO.
//!
//! Open loop means the arrival schedule is fixed up front and never waits
//! for the warehouse: when maintenance falls behind, the UMQ grows (or, with
//! an admission bound, sheds), and staleness climbs — exactly the regime
//! the burn-rate alerts are designed to catch. The whole run is driven by
//! the virtual clock, so every series, state transition, and counter is
//! bit-identical for a given seed.

use dyno_core::{StepOutcome, Strategy};
use dyno_obs::{Sampler, SloPolicy, SloState, StalenessTracker};
use dyno_view::{SourcePort, ViewDefinition, ViewError, Warehouse};

use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::port::SimPort;
use crate::testbed::{build_space, build_view, TestbedConfig};
use crate::workload::{OpenLoopConfig, WorkloadGen};

/// Parameters of one monitored run.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Testbed shape (sources, relations, tuples).
    pub testbed: TestbedConfig,
    /// The open-loop arrival process.
    pub open_loop: OpenLoopConfig,
    /// Workload generator seed (independent of the testbed data seed).
    pub workload_seed: u64,
    /// Per-tenant views registered besides the full testbed join:
    /// alternating single-relation and two-way-join views, so lanes have
    /// divergent source footprints.
    pub tenant_views: usize,
    /// UMQ admission bound (`None` = unbounded, nothing is ever shed).
    pub umq_bound: Option<usize>,
    /// Sampling window, simulated µs.
    pub window_us: u64,
    /// Ring capacity per series, in windows.
    pub window_capacity: usize,
    /// The staleness SLO every view lane is evaluated against.
    pub slo: SloPolicy,
    /// Windows to keep ticking after the schedule is fully maintained, so
    /// burn-rate states can recover to `ok` on the record.
    pub drain_windows: u64,
    /// Step budget (guards pathological schedules).
    pub max_steps: u64,
    /// Turn the per-operator cost profiler on for the run; the captured
    /// plan trees land in [`MonitorReport::profile`] (and nowhere else —
    /// [`MonitorReport::to_json`] stays byte-deterministic either way).
    pub profile: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            testbed: TestbedConfig { tuples_per_relation: 300, ..Default::default() },
            open_loop: OpenLoopConfig::default(),
            workload_seed: 42,
            tenant_views: 3,
            umq_bound: None,
            window_us: 1_000_000,
            window_capacity: 4096,
            slo: SloPolicy::target(10_000_000),
            drain_windows: 12,
            max_steps: 200_000,
            profile: false,
        }
    }
}

/// Builds the tenant views `T0..Tn`: even indices are single-relation
/// passthroughs, odd indices two-way key joins, rotating over the testbed
/// relations so different tenants watch different sources.
pub fn tenant_views(cfg: &TestbedConfig, n: usize) -> Vec<ViewDefinition> {
    let names = cfg.relation_names();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let r = t % names.len();
        let q = if t % 2 == 0 {
            let mut b = dyno_relational::SpjQuery::over([names[r].clone()]);
            for attr in cfg.schema(r).attrs() {
                b = b.select_as(&names[r], &attr.name, &format!("{}_{}", names[r], attr.name));
            }
            b.build()
        } else {
            let r2 = (r + 1) % names.len();
            let mut b = dyno_relational::SpjQuery::over([names[r].clone(), names[r2].clone()]);
            b = b.select_as(&names[r], "K", "K");
            for attr in cfg.schema(r2).attrs().iter().skip(1) {
                b = b.select_as(&names[r2], &attr.name, &format!("{}_{}", names[r2], attr.name));
            }
            b.join_eq((names[r].as_str(), "K"), (names[r2].as_str(), "K")).build()
        };
        out.push(ViewDefinition::new(format!("T{t}"), q));
    }
    out
}

/// What a monitored run produced. Everything in here is derived from the
/// virtual clock and the seeded generators, so [`MonitorReport::to_json`]
/// is byte-identical across runs with the same [`MonitorConfig`].
#[derive(Debug)]
pub struct MonitorReport {
    /// The registry sampler (counter rates, gauges, histogram windows).
    pub sampler: Sampler,
    /// The per-view staleness lanes and their SLO states.
    pub tracker: StalenessTracker,
    /// Simulated-time metrics of the run.
    pub metrics: Metrics,
    /// Updates admitted to the UMQ.
    pub admitted: u64,
    /// Updates rejected at the admission bound.
    pub shed: u64,
    /// Maintenance steps executed.
    pub steps: u64,
    /// Whether the step budget ran out before the schedule was maintained.
    pub exhausted: bool,
    /// Final SLO state per view lane.
    pub final_states: Vec<(String, SloState)>,
    /// Per-operator cost profile snapshot (empty unless
    /// [`MonitorConfig::profile`] was on). Deliberately **not** part of
    /// [`MonitorReport::to_json`]: node `ns` fields are wall-clock, and the
    /// JSON payload is asserted byte-deterministic by seed.
    pub profile: dyno_obs::Profile,
}

impl MonitorReport {
    /// The combined JSON document: run summary, registry series, staleness
    /// lanes. This is the payload `dyno-bench monitor --json` writes and
    /// `benchdiff` compares.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"monitor\":{");
        out.push_str(&format!(
            "\"steps\":{},\"admitted\":{},\"shed\":{},\"exhausted\":{},\"end_us\":{},\"committed_us\":{},\"aborts\":{}",
            self.steps,
            self.admitted,
            self.shed,
            self.exhausted,
            self.metrics.end_us,
            self.metrics.committed_us,
            self.metrics.aborts,
        ));
        out.push_str("},\n\"series\":");
        out.push_str(&self.sampler.to_json());
        out.push_str(",\n\"slo\":");
        out.push_str(&self.tracker.to_json());
        out.push('}');
        out
    }

    /// The text dashboard: registry series, staleness lanes, run summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.sampler.render_text());
        out.push('\n');
        out.push_str(&self.tracker.render_text(self.metrics.end_us));
        out.push('\n');
        out.push_str(&format!(
            "run: {} steps, {} admitted, {} shed, {} aborts, {} queries, {} attempts, {:.1}s simulated{}\n",
            self.steps,
            self.admitted,
            self.shed,
            self.metrics.aborts,
            self.metrics.queries,
            self.metrics.attempts,
            self.metrics.end_us as f64 / 1e6,
            if self.exhausted { " [step budget exhausted]" } else { "" },
        ));
        out
    }
}

/// Runs one monitored open-loop scenario to completion (schedule fully
/// maintained plus [`MonitorConfig::drain_windows`] of recovery ticks).
pub fn run_monitor(cfg: &MonitorConfig) -> Result<MonitorReport, ViewError> {
    let space = build_space(&cfg.testbed);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(cfg.testbed, cfg.workload_seed);
    let schedule = gen.open_loop(&cfg.open_loop);

    let mut port = SimPort::new(space, schedule, CostModel::default());
    if cfg.profile {
        port.obs().set_profile(true);
    }
    let tracker = StalenessTracker::new(cfg.window_capacity);
    tracker.bind_obs(port.obs());
    tracker.set_cadence(cfg.window_us, 0);
    tracker.set_slo(cfg.slo);
    port.set_staleness(tracker.clone());
    let mut sampler = Sampler::new(port.obs().registry(), cfg.window_us, cfg.window_capacity, 0);

    let mut wh = Warehouse::new(info, Strategy::Pessimistic).with_obs(port.obs().clone());
    if let Some(bound) = cfg.umq_bound {
        wh = wh.with_umq_bound(bound).expect("open-loop warehouses never attach a WAL");
    }
    wh = wh.with_staleness(tracker.clone());
    wh.add_view(build_view(&cfg.testbed));
    for v in tenant_views(&cfg.testbed, cfg.tenant_views) {
        wh.add_view(v);
    }
    wh.initialize(&mut port)?;
    port.start_metering();

    let dbg_phase = std::env::var("DYNO_MONITOR_PHASES").is_ok();
    let t_loop = std::time::Instant::now();
    let mut steps = 0u64;
    let mut exhausted = false;
    loop {
        if steps >= cfg.max_steps {
            exhausted = true;
            break;
        }
        let t_step = std::time::Instant::now();
        let outcome = wh.step(&mut port)?;
        if dbg_phase && t_step.elapsed().as_millis() > 100 {
            eprintln!(
                "slow step: {:?} {}ms at sim {}us depth={}",
                outcome,
                t_step.elapsed().as_millis(),
                port.now_us(),
                wh.admitted_count()
            );
        }
        match outcome {
            StepOutcome::Idle => {
                if !port.advance_to_next_commit() {
                    break;
                }
            }
            _ => steps += 1,
        }
        let now = port.now_us();
        sampler.maybe_sample(now);
        tracker.maybe_sample(now);
    }
    if dbg_phase {
        eprintln!("main loop: {}ms, {} steps", t_loop.elapsed().as_millis(), steps);
    }

    // Recovery ticks: with the schedule drained and the UMQ empty, clean
    // windows accumulate and the burn-rate states walk back toward ok.
    let t_drain = std::time::Instant::now();
    for _ in 0..cfg.drain_windows {
        let next = port.now_us() + cfg.window_us;
        port.advance_to(next);
        let _ = wh.step(&mut port)?;
        sampler.maybe_sample(port.now_us());
        tracker.maybe_sample(port.now_us());
    }
    if dbg_phase {
        eprintln!("drain: {}ms", t_drain.elapsed().as_millis());
    }

    Ok(MonitorReport {
        metrics: port.metrics(),
        admitted: wh.admitted_count(),
        shed: wh.shed_count(),
        steps,
        exhausted,
        final_states: tracker.states(),
        profile: port.obs().profile_snapshot(),
        sampler,
        tracker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> MonitorConfig {
        MonitorConfig {
            testbed: TestbedConfig { tuples_per_relation: 60, ..Default::default() },
            open_loop: OpenLoopConfig {
                duration_us: 40_000_000,
                du_per_sec: 2.0,
                sc_storms: 0,
                ..Default::default()
            },
            tenant_views: 2,
            ..Default::default()
        }
    }

    #[test]
    fn steady_run_converges_to_ok_everywhere() {
        let report = run_monitor(&quick_cfg()).unwrap();
        assert!(!report.exhausted);
        assert!(report.admitted > 0, "DUs flowed through the UMQ");
        assert_eq!(report.shed, 0, "unbounded UMQ never sheds");
        assert!(report.sampler.windows() >= 20, "a dense window series");
        assert!(report.tracker.windows() >= 20);
        for (name, state) in &report.final_states {
            assert_eq!(*state, SloState::Ok, "lane {name} must recover to ok");
        }
    }

    #[test]
    fn lanes_cover_every_registered_view() {
        let report = run_monitor(&quick_cfg()).unwrap();
        let names = report.tracker.view_names();
        assert_eq!(names, vec!["Testbed", "T0", "T1"]);
    }

    #[test]
    fn profiled_run_captures_plans_and_keeps_json_identical() {
        let off = run_monitor(&quick_cfg()).unwrap();
        let on = run_monitor(&MonitorConfig { profile: true, ..quick_cfg() }).unwrap();
        assert_eq!(off.to_json(), on.to_json(), "the profiler must not perturb the report");
        assert!(off.profile.is_empty(), "profiler off captures nothing");
        assert!(on.profile.plan_count() > 0, "profiled run captured plan trees");
    }

    #[test]
    fn report_json_is_deterministic_by_seed() {
        let a = run_monitor(&quick_cfg()).unwrap().to_json();
        let b = run_monitor(&quick_cfg()).unwrap().to_json();
        assert_eq!(a, b, "same config, byte-identical report");
        let c = run_monitor(&MonitorConfig { workload_seed: 43, ..quick_cfg() }).unwrap().to_json();
        assert_ne!(a, c, "a different workload seed moves the series");
    }
}
