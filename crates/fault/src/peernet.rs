//! Peer-to-peer delivery fabric for replicated warehouses: every ordered
//! peer pair is a lossy link driven by the same seeded [`FaultProfile`]
//! machinery as the source-side [`ChaosTransport`], plus the fault class
//! replication adds — **network partitions**. A [`PartitionWindow`] severs
//! both directions between one peer pair for a simulated-time window;
//! messages sent into the partition are *held* and scheduled for delivery at
//! the heal instant (the link layer retransmits until reachable), so a
//! partition delays but never destroys.
//!
//! Like the wrapper send log on the ingress path, each link keeps every sent
//! message until the receiver acks it, so a gap NACK can always refetch —
//! dropped messages are withheld, not lost. Delivery order is deterministic:
//! envelopes sit in a BTreeMap keyed by `(deliver_at, tie)` where `tie` is a
//! monotone send counter.
//!
//! [`ChaosTransport`]: crate::transport::ChaosTransport

use std::collections::BTreeMap;

use dyno_obs::{Collector, Counter};

use crate::profile::FaultProfile;
use crate::rng::Rng;

/// One scheduled (or held) envelope.
#[derive(Debug, Clone)]
struct Envelope<M> {
    from: u16,
    to: u16,
    seq: u64,
    msg: M,
}

/// A delivered message: `(from, to, seq, message)`.
pub type Delivery<M> = (u16, u16, u64, M);

/// Per-link state: the unacked send log, keyed by link sequence.
#[derive(Debug, Clone)]
struct Link<M> {
    log: BTreeMap<u64, M>,
}

impl<M> Default for Link<M> {
    fn default() -> Self {
        Link { log: BTreeMap::new() }
    }
}

/// A scheduled connectivity cut between peers `a` and `b` (both directions)
/// over `[start_us, end_us)` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the severed pair.
    pub a: u16,
    /// The other side.
    pub b: u16,
    /// First microsecond the pair is unreachable.
    pub start_us: u64,
    /// First microsecond the pair is reachable again.
    pub end_us: u64,
}

impl PartitionWindow {
    fn covers(&self, x: u16, y: u16, now_us: u64) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && now_us >= self.start_us && now_us < self.end_us
    }
}

/// The fault-injected peer fabric. `M` is the wire message (the replication
/// engine sends encoded peer deltas).
#[derive(Debug, Clone)]
pub struct PeerNet<M> {
    profile: FaultProfile,
    rng: Rng,
    links: BTreeMap<(u16, u16), Link<M>>,
    /// Envelopes awaiting delivery, keyed `(deliver_at_us, tie)`.
    inflight: BTreeMap<(u64, u64), Envelope<M>>,
    partitions: Vec<PartitionWindow>,
    /// Windows that have already held at least one message (counted once).
    tripped: Vec<bool>,
    tie: u64,
    partitions_injected: u64,
    injected_counter: Counter,
}

impl<M: Clone> PeerNet<M> {
    /// A fabric injecting `profile`'s delivery faults from `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        PeerNet {
            profile,
            rng: Rng::new(seed ^ 0xC0FF_EE00_D15C_0000),
            links: BTreeMap::new(),
            inflight: BTreeMap::new(),
            partitions: Vec::new(),
            tripped: Vec::new(),
            tie: 0,
            partitions_injected: 0,
            injected_counter: Counter::default(),
        }
    }

    /// Binds the `replica.partitions_injected` counter into a collector.
    pub fn with_obs(mut self, obs: &Collector) -> Self {
        self.injected_counter = obs.counter("replica.partitions_injected");
        self
    }

    /// Schedules a partition window; overlapping windows compose (the pair
    /// heals only when every covering window has ended).
    pub fn add_partition(&mut self, w: PartitionWindow) {
        self.partitions.push(w);
        self.tripped.push(false);
    }

    /// True iff `a` and `b` are currently unreachable from each other.
    pub fn partitioned(&self, a: u16, b: u16, now_us: u64) -> bool {
        self.partitions.iter().any(|w| w.covers(a, b, now_us))
    }

    /// Partition windows that actually held traffic so far.
    pub fn partitions_injected(&self) -> u64 {
        self.partitions_injected
    }

    /// Messages currently scheduled or held for delivery.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Unacked messages retained in link send logs.
    pub fn logged_len(&self) -> usize {
        self.links.values().map(|l| l.log.len()).sum()
    }

    /// Latest sequence ever sent on the `from → to` link (0 if none).
    pub fn last_sent(&self, from: u16, to: u16) -> u64 {
        self.links.get(&(from, to)).and_then(|l| l.log.keys().next_back().copied()).unwrap_or(0)
    }

    /// The heal instant of the latest window covering `(a, b)` at `now_us`.
    fn heal_at(&self, a: u16, b: u16, now_us: u64) -> u64 {
        self.partitions
            .iter()
            .filter(|w| w.covers(a, b, now_us))
            .map(|w| w.end_us)
            .max()
            .unwrap_or(now_us)
    }

    fn mark_tripped(&mut self, a: u16, b: u16, now_us: u64) {
        for (i, w) in self.partitions.iter().enumerate() {
            if w.covers(a, b, now_us) && !self.tripped[i] {
                self.tripped[i] = true;
                self.partitions_injected += 1;
                self.injected_counter.inc();
            }
        }
    }

    fn schedule(&mut self, at_us: u64, env: Envelope<M>) {
        self.tie += 1;
        self.inflight.insert((at_us, self.tie), env);
    }

    /// Sends one sequenced message on the `from → to` link. The message
    /// enters the link log unconditionally (acks prune it); delivery is then
    /// subject to partitions, drops, duplication, delay and reordering.
    pub fn send(&mut self, from: u16, to: u16, seq: u64, msg: M, now_us: u64) {
        self.links.entry((from, to)).or_default().log.insert(seq, msg.clone());
        let env = Envelope { from, to, seq, msg };

        if self.partitioned(from, to, now_us) {
            // Held until heal: the link layer keeps retransmitting, so the
            // first post-heal instant is when delivery can first succeed.
            self.mark_tripped(from, to, now_us);
            let at = self.heal_at(from, to, now_us);
            self.schedule(at, env);
            return;
        }

        if self.profile.drop_pm > 0 && self.rng.gen_ratio(self.profile.drop_pm, 1000) {
            // Withheld entirely; only the log copy survives, recoverable by
            // a receiver gap NACK.
            return;
        }
        let mut at = now_us;
        if self.profile.delay_pm > 0
            && self.profile.max_delay_us > 0
            && self.rng.gen_ratio(self.profile.delay_pm, 1000)
        {
            at += self.rng.gen_range(0..self.profile.max_delay_us);
        }
        if self.profile.reorder_pm > 0 && self.rng.gen_ratio(self.profile.reorder_pm, 1000) {
            // Small forward jitter: enough to invert arrival order among
            // near-simultaneous sends without stalling quiescence.
            at += self.rng.gen_range(1..1_000u64);
        }
        if self.profile.dup_pm > 0 && self.rng.gen_ratio(self.profile.dup_pm, 1000) {
            let extra = self.rng.gen_range(0..self.profile.max_delay_us.max(1_000));
            self.schedule(at + extra, env.clone());
        }
        self.schedule(at, env);
    }

    /// Every envelope due at or before `now_us`, in deterministic order.
    /// Envelopes whose pair is (still, or again) partitioned at `now_us` are
    /// re-held until the covering window heals.
    pub fn poll(&mut self, now_us: u64) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        let due: Vec<(u64, u64)> =
            self.inflight.range(..=(now_us, u64::MAX)).map(|(&k, _)| k).collect();
        for key in due {
            let env = self.inflight.remove(&key).expect("due key present");
            if self.partitioned(env.from, env.to, now_us) {
                self.mark_tripped(env.from, env.to, now_us);
                let at = self.heal_at(env.from, env.to, now_us);
                self.schedule(at, env);
            } else {
                out.push((env.from, env.to, env.seq, env.msg));
            }
        }
        out
    }

    /// Gap refetch: returns every logged message on `origin → requester`
    /// with sequence above `after`, immediately and reliably — unless the
    /// pair is partitioned right now, in which case the NACK itself cannot
    /// cross and the caller must retry after heal.
    pub fn nack(&mut self, requester: u16, origin: u16, after: u64, now_us: u64) -> Vec<(u64, M)> {
        if self.partitioned(origin, requester, now_us) {
            self.mark_tripped(origin, requester, now_us);
            return Vec::new();
        }
        match self.links.get(&(origin, requester)) {
            Some(link) => link.log.range(after + 1..).map(|(&s, m)| (s, m.clone())).collect(),
            None => Vec::new(),
        }
    }

    /// The receiver acknowledged everything through `seq` on `from → to`;
    /// the link log below the ack floor is pruned.
    pub fn ack(&mut self, from: u16, to: u16, seq: u64) {
        if let Some(link) = self.links.get_mut(&(from, to)) {
            link.log = link.log.split_off(&(seq + 1));
        }
    }

    /// The earliest instant anything in flight becomes due (for the
    /// harness's virtual-time stepping), if anything is in flight.
    pub fn next_event_us(&self) -> Option<u64> {
        self.inflight.keys().next().map(|&(at, _)| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_net() -> PeerNet<u64> {
        PeerNet::new(FaultProfile::quiet(), 1)
    }

    #[test]
    fn quiet_link_delivers_immediately_in_order() {
        let mut net = quiet_net();
        net.send(0, 1, 1, 10, 0);
        net.send(0, 1, 2, 20, 0);
        let got = net.poll(0);
        assert_eq!(got, vec![(0, 1, 1, 10), (0, 1, 2, 20)]);
        assert_eq!(net.inflight_len(), 0);
        assert_eq!(net.logged_len(), 2, "log retained until acked");
        net.ack(0, 1, 2);
        assert_eq!(net.logged_len(), 0);
    }

    #[test]
    fn partition_holds_until_heal_and_counts_once() {
        let mut net = quiet_net();
        net.add_partition(PartitionWindow { a: 0, b: 1, start_us: 100, end_us: 500 });
        net.send(0, 1, 1, 10, 200);
        net.send(1, 0, 1, 11, 250);
        assert!(net.poll(499).is_empty(), "both directions held");
        assert_eq!(net.partitions_injected(), 1, "window counted once");
        let healed = net.poll(500);
        assert_eq!(healed.len(), 2);
        assert_eq!(healed[0], (0, 1, 1, 10));
        assert_eq!(healed[1], (1, 0, 1, 11));
    }

    #[test]
    fn partition_does_not_touch_other_pairs() {
        let mut net = quiet_net();
        net.add_partition(PartitionWindow { a: 0, b: 1, start_us: 0, end_us: 1_000 });
        net.send(0, 2, 1, 7, 10);
        assert_eq!(net.poll(10), vec![(0, 2, 1, 7)]);
        assert_eq!(net.partitions_injected(), 0, "no traffic was held");
    }

    #[test]
    fn dropped_messages_are_recoverable_by_nack() {
        let mut net: PeerNet<u64> =
            PeerNet::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 3);
        net.send(0, 1, 1, 10, 0);
        net.send(0, 1, 2, 20, 0);
        assert!(net.poll(1_000_000).is_empty(), "everything dropped");
        let refetched = net.nack(1, 0, 0, 1_000_000);
        assert_eq!(refetched, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn nack_cannot_cross_a_partition() {
        let mut net = quiet_net();
        net.send(0, 1, 1, 10, 0);
        net.add_partition(PartitionWindow { a: 0, b: 1, start_us: 50, end_us: 150 });
        assert!(net.nack(1, 0, 0, 100).is_empty());
        assert_eq!(net.nack(1, 0, 0, 150), vec![(1, 10)]);
    }

    #[test]
    fn delayed_delivery_surfaces_next_event() {
        let mut net: PeerNet<u64> = PeerNet::new(
            FaultProfile { delay_pm: 1000, max_delay_us: 5_000, ..FaultProfile::quiet() },
            9,
        );
        net.send(0, 1, 1, 10, 0);
        if net.poll(0).is_empty() {
            let at = net.next_event_us().expect("delayed envelope in flight");
            assert!(at > 0 && at < 5_000);
            assert_eq!(net.poll(at).len(), 1);
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let profile = FaultProfile::drop_dup();
        let run = |seed| {
            let mut net: PeerNet<u64> = PeerNet::new(profile, seed);
            for s in 1..=50u64 {
                net.send(0, 1, s, s, s * 10);
            }
            net.poll(u64::MAX / 2)
        };
        assert_eq!(run(42), run(42));
    }
}
