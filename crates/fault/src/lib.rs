//! # dyno-fault — deterministic fault injection & recovery
//!
//! The warehouse in the paper's architecture talks to its sources over a
//! network: update messages flow wrapper → UMQ, and maintenance queries flow
//! engine → source. The seed repo wired both paths as direct in-process
//! calls, which silently assumes a perfect network. This crate makes the
//! channel explicit — a [`Transport`] sits on the delivery path and a fault
//! oracle on the query path — so the recovery machinery in the view manager
//! can be exercised under *seeded, reproducible* chaos:
//!
//! * [`Direct`] is the default transport: a zero-overhead passthrough with
//!   today's behavior, bit-identical to the pre-fault code path.
//! * [`ChaosTransport`] draws from a SplitMix64 PRNG ([`rng::Rng`]) keyed by
//!   an explicit seed and injects message **drop** (withheld until NACKed),
//!   **duplication**, **reordering**, and **bounded delay** on delivery,
//!   plus **timeouts**, **transient errors**, and **crash/restart windows**
//!   on maintenance queries.
//! * [`Recovery`] is the receiver-side sequencer: exactly-once, in-order
//!   per-source delivery via `(source, version)` dedupe, a reorder buffer,
//!   and a NACK/refetch hook for gaps.
//! * [`RetryPolicy`] bounds query retries with exponential backoff,
//!   deterministic jitter, and a simulated-time budget.
//!
//! Everything is driven by simulated time (`dyno-obs`'s virtual clock) and a
//! seeded PRNG — a chaos run is a pure function of `(scenario, profile,
//! seed)`, which is what lets the chaos suite assert convergence instead of
//! merely hoping for it.

pub mod peernet;
pub mod profile;
pub mod recovery;
pub mod retry;
pub mod rng;
pub mod transport;

pub use peernet::{PartitionWindow, PeerNet};
pub use profile::FaultProfile;
pub use recovery::{Offer, Recovery, Sequencer};
pub use retry::RetryPolicy;
pub use transport::{ChaosTransport, Direct, QueryFault, Transport};
