//! Fault profiles: which failure modes a [`ChaosTransport`] injects and how
//! hard, expressed as per-mille probabilities so the seeded PRNG draws are
//! exact integer arithmetic.
//!
//! [`ChaosTransport`]: crate::transport::ChaosTransport

/// Injection rates and magnitudes for one chaos run. All probabilities are
/// per-mille (`0..=1000`); durations are simulated microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Short name, used in counters/labels and test output.
    pub name: &'static str,
    /// Per-message probability of being *dropped*: withheld from delivery
    /// until the receiver NACKs the gap (nothing is ever lost forever —
    /// wrappers keep their send log, so a refetch always succeeds).
    pub drop_pm: u64,
    /// Per-message probability of duplicated delivery.
    pub dup_pm: u64,
    /// Per-batch probability of shuffling the delivery order.
    pub reorder_pm: u64,
    /// Per-message probability of delayed delivery.
    pub delay_pm: u64,
    /// Upper bound for a delivery delay (µs, exclusive; 0 disables delay).
    pub max_delay_us: u64,
    /// Per-query probability that the answer is lost (the query runs and
    /// costs time at the source, but the manager must retry).
    pub timeout_pm: u64,
    /// Per-query probability of a transient error before the query runs.
    pub transient_pm: u64,
    /// Per-query probability that the contacted source crashes.
    pub crash_pm: u64,
    /// How long a crashed source stays down (µs).
    pub crash_down_us: u64,
}

impl FaultProfile {
    /// No faults at all (a chaos run with this profile must behave exactly
    /// like the direct transport).
    pub fn quiet() -> Self {
        FaultProfile {
            name: "quiet",
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            delay_pm: 0,
            max_delay_us: 0,
            timeout_pm: 0,
            transient_pm: 0,
            crash_pm: 0,
            crash_down_us: 0,
        }
    }

    /// Messages vanish until NACKed and arrive twice: exercises the
    /// refetch hook and the `UpdateId` dedupe.
    pub fn drop_dup() -> Self {
        FaultProfile { name: "drop_dup", drop_pm: 200, dup_pm: 250, ..FaultProfile::quiet() }
    }

    /// Messages arrive late and out of order: exercises the per-source
    /// reorder buffer and the consistency-critical flush after queries.
    pub fn reorder_delay() -> Self {
        FaultProfile {
            name: "reorder_delay",
            reorder_pm: 400,
            delay_pm: 300,
            max_delay_us: 3_000_000,
            ..FaultProfile::quiet()
        }
    }

    /// Sources time out, error transiently, and crash outright: exercises
    /// the retry policy, the backoff budget, and queue parking/resume.
    pub fn crash_restart() -> Self {
        FaultProfile {
            name: "crash_restart",
            timeout_pm: 120,
            transient_pm: 120,
            crash_pm: 60,
            crash_down_us: 2_000_000,
            ..FaultProfile::quiet()
        }
    }

    /// The acceptance grid: every preset that injects faults.
    pub fn all() -> [FaultProfile; 3] {
        [FaultProfile::drop_dup(), FaultProfile::reorder_delay(), FaultProfile::crash_restart()]
    }

    /// True iff the profile injects any delivery-path fault.
    pub fn faults_delivery(&self) -> bool {
        self.drop_pm + self.dup_pm + self.reorder_pm + self.delay_pm > 0
    }

    /// True iff the profile injects any query-path fault.
    pub fn faults_queries(&self) -> bool {
        self.timeout_pm + self.transient_pm + self.crash_pm > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_both_paths() {
        assert!(FaultProfile::drop_dup().faults_delivery());
        assert!(!FaultProfile::drop_dup().faults_queries());
        assert!(FaultProfile::reorder_delay().faults_delivery());
        assert!(FaultProfile::crash_restart().faults_queries());
        assert!(!FaultProfile::quiet().faults_delivery());
        assert!(!FaultProfile::quiet().faults_queries());
    }
}
