//! Retry policy for maintenance queries: exponential backoff with
//! deterministic jitter and a per-query simulated-time budget.

use crate::rng::Rng;

/// How a faulted port retries maintenance queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per query before giving up (1 = no retries).
    pub max_attempts: u32,
    /// First backoff (µs); doubles each retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling (µs).
    pub max_backoff_us: u64,
    /// Total simulated time (µs) one query may spend waiting — retries and
    /// crash-recovery waits included — before the entry is parked.
    pub budget_us: u64,
    /// Jitter as per-mille of the backoff (`0..=1000`), drawn from the
    /// seeded PRNG so retries are reproducible.
    pub jitter_pm: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_us: 50_000,
            max_backoff_us: 1_600_000,
            budget_us: 8_000_000,
            jitter_pm: 250,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based): exponential in
    /// `attempt`, capped, plus up to `jitter_pm`‰ of deterministic jitter.
    /// Every step saturates and the result is clamped at `max_backoff_us`,
    /// so no attempt count or policy extreme can overflow past the
    /// configured ceiling (attempt 0 is treated as attempt 1).
    pub fn backoff_us(&self, attempt: u32, rng: &mut Rng) -> u64 {
        let exp = self.base_backoff_us.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff_us);
        let jitter_span = capped.saturating_mul(self.jitter_pm.min(1000)) / 1000;
        if jitter_span == 0 {
            capped
        } else {
            capped.saturating_add(rng.gen_range(0..jitter_span)).min(self.max_backoff_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy { jitter_pm: 0, ..RetryPolicy::default() };
        let mut rng = Rng::new(1);
        let b1 = policy.backoff_us(1, &mut rng);
        let b2 = policy.backoff_us(2, &mut rng);
        let b6 = policy.backoff_us(6, &mut rng);
        assert_eq!(b1, policy.base_backoff_us);
        assert_eq!(b2, 2 * b1);
        assert_eq!(b6, policy.max_backoff_us, "capped at the ceiling");
    }

    #[test]
    fn high_attempt_counts_never_overflow_past_the_ceiling() {
        // Attempt 64+ used to feed `attempt - 1` into a shift whose result
        // was multiplied by the jitter per-mille — with an extreme base the
        // multiply wrapped. Every step now saturates and clamps.
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_us: u64::MAX / 2,
            max_backoff_us: u64::MAX,
            budget_us: u64::MAX,
            jitter_pm: 1000,
        };
        let mut rng = Rng::new(7);
        for attempt in [64, 65, 100, 1000, u32::MAX] {
            let b = policy.backoff_us(attempt, &mut rng);
            assert!(b <= policy.max_backoff_us, "attempt {attempt} exceeded the ceiling");
        }
        // A finite ceiling holds even when base * jitter would overflow.
        let capped = RetryPolicy { max_backoff_us: 1_000_000, ..policy };
        for attempt in [1, 64, 128] {
            let b = capped.backoff_us(attempt, &mut rng);
            assert!(b <= capped.max_backoff_us, "attempt {attempt} exceeded the cap");
        }
    }

    #[test]
    fn attempt_zero_is_treated_as_attempt_one() {
        // `attempt` is documented 1-based, but a 0 from a confused caller
        // must not underflow the shift.
        let policy = RetryPolicy { jitter_pm: 0, ..RetryPolicy::default() };
        let mut rng = Rng::new(1);
        assert_eq!(policy.backoff_us(0, &mut rng), policy.backoff_us(1, &mut rng));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy::default();
        let base = RetryPolicy { jitter_pm: 0, ..policy }.backoff_us(3, &mut Rng::new(1));
        for seed in 0..20 {
            let a = policy.backoff_us(3, &mut Rng::new(seed));
            let b = policy.backoff_us(3, &mut Rng::new(seed));
            assert_eq!(a, b, "same seed, same jitter");
            assert!(a >= base && a < base + base * policy.jitter_pm / 1000 + 1);
        }
    }
}
