//! The message/query transport between sources and the view manager.
//!
//! [`Transport`] sits on both legs of the paper's Figure 3 architecture:
//! wrapper messages pass through [`Transport::send`]/[`Transport::poll`] on
//! their way to the UMQ, and every maintenance query asks
//! [`Transport::query_fault`] before contacting a source. [`Direct`] is
//! today's perfectly reliable in-process path (zero overhead);
//! [`ChaosTransport`] injects drop/duplication/reorder/delay on delivery and
//! timeout/transient-error/crash on the query path, driven entirely by a
//! seeded SplitMix64 and the simulated clock, so every run replays exactly.

use std::collections::{BTreeMap, HashMap};

use dyno_obs::{field, stage, Collector, Counter};
use dyno_source::{SourceId, UpdateMessage};

use crate::profile::FaultProfile;
use crate::rng::Rng;

/// A fault injected on the maintenance-query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryFault {
    /// The query ran at the source but the answer was lost; the caller pays
    /// the round trip and must retry.
    Timeout,
    /// The source refused the connection; the caller retries after backoff
    /// without the query having run.
    Transient,
    /// The source crashed and stays down until the given simulated time.
    SourceDown {
        /// Earliest µs at which the source answers again.
        until_us: u64,
    },
}

/// The delivery/query fabric between sources and the view manager.
pub trait Transport {
    /// Accepts freshly committed wrapper messages; returns the subset
    /// delivered *now* (possibly duplicated/reordered). The rest is held.
    fn send(&mut self, msgs: Vec<UpdateMessage>, now_us: u64) -> Vec<UpdateMessage>;

    /// Held messages whose delivery time has come.
    fn poll(&mut self, now_us: u64) -> Vec<UpdateMessage>;

    /// Retransmission request: every held message of `source` with
    /// `source_version > after`, in version order. Wrappers log what they
    /// send, so a NACK can always be satisfied from the transport's store.
    fn nack(&mut self, source: SourceId, after: u64) -> Vec<UpdateMessage>;

    /// Durable retransmission: every message of `source` with
    /// `source_version > after` that the wrapper still remembers, in version
    /// order — *including* messages that were already delivered once. A
    /// restarted warehouse whose in-memory delivery state died with it calls
    /// this to resubscribe from its last durable high-water mark. The
    /// default forwards to [`Transport::nack`], which is exact for
    /// transports that never lose delivered state ([`Direct`] delivers
    /// straight into the UMQ, so nothing can be in flight across a kill).
    fn replay(&mut self, source: SourceId, after: u64) -> Vec<UpdateMessage> {
        self.nack(source, after)
    }

    /// The warehouse durably acknowledged everything of `source` up to and
    /// including `source_version == upto`; the wrapper may forget it. A
    /// no-op by default.
    fn ack(&mut self, source: SourceId, upto: u64) {
        let _ = (source, upto);
    }

    /// The fault (if any) to inject for a query about to contact `source`.
    fn query_fault(&mut self, source: SourceId, now_us: u64) -> Option<QueryFault>;

    /// The earliest future µs at which held state changes on its own (a
    /// delayed delivery falls due or a crashed source restarts).
    fn next_event_us(&self, now_us: u64) -> Option<u64>;

    /// Total faults injected so far (all kinds).
    fn injected_total(&self) -> u64;
}

/// The reliable transport: immediate in-order delivery, no query faults.
/// This is the default path and must stay indistinguishable from having no
/// transport at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Direct;

impl Transport for Direct {
    fn send(&mut self, msgs: Vec<UpdateMessage>, _now_us: u64) -> Vec<UpdateMessage> {
        msgs
    }

    fn poll(&mut self, _now_us: u64) -> Vec<UpdateMessage> {
        Vec::new()
    }

    fn nack(&mut self, _source: SourceId, _after: u64) -> Vec<UpdateMessage> {
        Vec::new()
    }

    fn query_fault(&mut self, _source: SourceId, _now_us: u64) -> Option<QueryFault> {
        None
    }

    fn next_event_us(&self, _now_us: u64) -> Option<u64> {
        None
    }

    fn injected_total(&self) -> u64 {
        0
    }
}

/// `fault.*` registry handles, bound once at construction.
#[derive(Debug, Clone, Default)]
struct FaultCounters {
    injected: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    delayed: Counter,
    timeouts: Counter,
    transients: Counter,
    crashes: Counter,
    nacks: Counter,
    redelivered: Counter,
}

impl FaultCounters {
    fn bind(obs: &Collector) -> Self {
        FaultCounters {
            injected: obs.counter("fault.injected_total"),
            dropped: obs.counter("fault.dropped"),
            duplicated: obs.counter("fault.duplicated"),
            reordered: obs.counter("fault.reordered"),
            delayed: obs.counter("fault.delayed"),
            timeouts: obs.counter("fault.query_timeouts"),
            transients: obs.counter("fault.query_transients"),
            crashes: obs.counter("fault.crashes"),
            nacks: obs.counter("fault.nacks"),
            redelivered: obs.counter("fault.redelivered"),
        }
    }
}

/// Delivery time of a dropped message: never, unless NACKed back to life.
const NEVER: u64 = u64::MAX;

/// The deterministic chaos transport. Every decision comes from one seeded
/// [`Rng`] in arrival order, so a `(seed, profile, workload)` triple replays
/// the exact same fault sequence.
#[derive(Debug, Clone)]
pub struct ChaosTransport {
    profile: FaultProfile,
    rng: Rng,
    /// Held messages: `(deliver_at_us, message)`, unordered; [`NEVER`] marks
    /// a drop recoverable only by NACK.
    held: Vec<(u64, UpdateMessage)>,
    /// Crash windows per source.
    down_until: HashMap<SourceId, u64>,
    /// The wrapper-side send log: everything ever offered to the transport,
    /// keyed by `(source, source_version)`, pruned by [`Transport::ack`].
    /// This is what lets [`Transport::replay`] re-deliver messages that were
    /// *successfully* delivered once but died with a killed warehouse.
    sent: BTreeMap<SourceId, BTreeMap<u64, UpdateMessage>>,
    counters: FaultCounters,
    obs: Collector,
}

impl ChaosTransport {
    /// A chaos transport with the given profile and fault seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        ChaosTransport {
            profile,
            rng: Rng::new(seed),
            held: Vec::new(),
            down_until: HashMap::new(),
            sent: BTreeMap::new(),
            counters: FaultCounters::default(),
            obs: Collector::disabled(),
        }
    }

    /// Binds the `fault.*` counters into a collector's registry and keeps
    /// the handle for per-message provenance (`xport.*` stages).
    pub fn with_obs(mut self, obs: &Collector) -> Self {
        self.counters = FaultCounters::bind(obs);
        self.obs = obs.clone();
        self
    }

    /// Number of messages currently held (dropped or delayed).
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Number of messages in the wrapper send log (un-acked retransmission
    /// candidates).
    pub fn sent_len(&self) -> usize {
        self.sent.values().map(BTreeMap::len).sum()
    }

    fn inject(&mut self, c: fn(&FaultCounters) -> &Counter) {
        self.counters.injected.inc();
        c(&self.counters).inc();
    }

    fn roll(&mut self, pm: u64) -> bool {
        pm > 0 && self.rng.gen_ratio(pm, 1000)
    }
}

impl Transport for ChaosTransport {
    fn send(&mut self, msgs: Vec<UpdateMessage>, now_us: u64) -> Vec<UpdateMessage> {
        let mut out = Vec::with_capacity(msgs.len());
        for msg in msgs {
            // The wrapper logs before the network rolls its dice: replay()
            // can resurrect the message whatever happens to it below.
            self.sent.entry(msg.source).or_default().insert(msg.source_version, msg.clone());
            // A crashed source's wrapper cannot talk to the manager either:
            // its messages wait out the crash window.
            let down = self.down_until.get(&msg.source).copied().filter(|&t| t > now_us);
            if let Some(until) = down {
                self.held.push((until, msg));
                continue;
            }
            if self.roll(self.profile.drop_pm) {
                self.inject(|c| &c.dropped);
                self.obs.prov(msg.id.0, stage::XPORT_DROP, &[]);
                self.held.push((NEVER, msg));
                continue;
            }
            if self.roll(self.profile.delay_pm) && self.profile.max_delay_us > 0 {
                self.inject(|c| &c.delayed);
                let dt = self.rng.gen_range(1..self.profile.max_delay_us);
                self.obs.prov(msg.id.0, stage::XPORT_DELAY, &[field("until_us", now_us + dt)]);
                self.held.push((now_us + dt, msg));
                continue;
            }
            let dup = self.roll(self.profile.dup_pm);
            out.push(msg.clone());
            if dup {
                self.inject(|c| &c.duplicated);
                self.obs.prov(msg.id.0, stage::XPORT_DUP, &[]);
                out.push(msg);
            }
        }
        if out.len() > 1 && self.roll(self.profile.reorder_pm) {
            self.inject(|c| &c.reordered);
            for m in &out {
                self.obs.prov(m.id.0, stage::XPORT_REORDER, &[]);
            }
            self.rng.shuffle(&mut out);
        }
        out
    }

    fn poll(&mut self, now_us: u64) -> Vec<UpdateMessage> {
        // Drops (`NEVER`) are only recoverable by NACK, no matter how far
        // the clock advances.
        let (mut due, keep): (Vec<_>, Vec<_>) =
            self.held.drain(..).partition(|&(at, _)| at != NEVER && at <= now_us);
        self.held = keep;
        due.sort_by_key(|(at, msg)| (*at, msg.source_version));
        due.into_iter().map(|(_, m)| m).collect()
    }

    fn nack(&mut self, source: SourceId, after: u64) -> Vec<UpdateMessage> {
        self.counters.nacks.inc();
        let (hit, keep): (Vec<_>, Vec<_>) = self
            .held
            .drain(..)
            .partition(|(_, msg)| msg.source == source && msg.source_version > after);
        self.held = keep;
        let mut out: Vec<UpdateMessage> = hit.into_iter().map(|(_, m)| m).collect();
        out.sort_by_key(|m| m.source_version);
        self.counters.redelivered.add(out.len() as u64);
        for m in &out {
            self.obs.prov(m.id.0, stage::XPORT_NACK, &[field("after", after)]);
        }
        out
    }

    fn replay(&mut self, source: SourceId, after: u64) -> Vec<UpdateMessage> {
        // Everything the wrapper remembers beyond `after` is retransmitted
        // from the send log; matching held copies are drained so the same
        // message does not also fall due later (the gate would drop the
        // duplicate anyway, but the clean form keeps held-state small).
        self.held.retain(|(_, m)| !(m.source == source && m.source_version > after));
        let out: Vec<UpdateMessage> = match self.sent.get(&source) {
            Some(log) => log.range(after + 1..).map(|(_, m)| m.clone()).collect(),
            None => Vec::new(),
        };
        self.counters.nacks.inc();
        self.counters.redelivered.add(out.len() as u64);
        for m in &out {
            self.obs.prov(m.id.0, stage::XPORT_REPLAY, &[field("after", after)]);
        }
        out
    }

    fn ack(&mut self, source: SourceId, upto: u64) {
        if let Some(log) = self.sent.get_mut(&source) {
            *log = log.split_off(&(upto + 1));
        }
    }

    fn query_fault(&mut self, source: SourceId, now_us: u64) -> Option<QueryFault> {
        if let Some(&until) = self.down_until.get(&source) {
            if until > now_us {
                return Some(QueryFault::SourceDown { until_us: until });
            }
        }
        if self.roll(self.profile.crash_pm) {
            self.inject(|c| &c.crashes);
            let until = now_us + self.profile.crash_down_us;
            self.down_until.insert(source, until);
            return Some(QueryFault::SourceDown { until_us: until });
        }
        if self.roll(self.profile.timeout_pm) {
            self.inject(|c| &c.timeouts);
            return Some(QueryFault::Timeout);
        }
        if self.roll(self.profile.transient_pm) {
            self.inject(|c| &c.transients);
            return Some(QueryFault::Transient);
        }
        None
    }

    fn next_event_us(&self, now_us: u64) -> Option<u64> {
        let held = self.held.iter().map(|&(at, _)| at).filter(|&at| at > now_us && at < NEVER);
        let downs = self.down_until.values().copied().filter(|&at| at > now_us);
        held.chain(downs).min()
    }

    fn injected_total(&self) -> u64 {
        self.counters.injected.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{AttrType, DataUpdate, Delta, Schema, SourceUpdate, Tuple};
    use dyno_source::UpdateId;

    fn msg(id: u64, source: u32, version: u64) -> UpdateMessage {
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: version,
            update: SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([id as i64])]).unwrap(),
            )),
        }
    }

    #[test]
    fn direct_is_a_passthrough() {
        let mut t = Direct;
        let sent = t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0);
        assert_eq!(sent.len(), 2);
        assert!(t.poll(u64::MAX).is_empty());
        assert_eq!(t.query_fault(SourceId(0), 0), None);
        assert_eq!(t.injected_total(), 0);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = ChaosTransport::new(FaultProfile::drop_dup(), seed);
            let mut delivered = Vec::new();
            for i in 0..50 {
                delivered.extend(t.send(vec![msg(i, 0, i + 1)], i * 1000));
            }
            (delivered.iter().map(|m| m.id.0).collect::<Vec<_>>(), t.injected_total())
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7).0, run(8).0, "different seed, different sequence");
    }

    #[test]
    fn dropped_messages_are_recovered_by_nack() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        let delivered = t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0);
        assert!(delivered.is_empty(), "everything dropped");
        assert!(t.poll(u64::MAX).is_empty(), "drops never fall due on their own");
        let refetched = t.nack(SourceId(0), 0);
        assert_eq!(refetched.len(), 2);
        assert!(refetched.windows(2).all(|w| w[0].source_version < w[1].source_version));
        assert_eq!(t.held_len(), 0);
    }

    #[test]
    fn nack_respects_source_and_version_bounds() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        t.send(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 1, 1)], 0);
        let refetched = t.nack(SourceId(0), 1);
        assert_eq!(refetched.len(), 1);
        assert_eq!(refetched[0].source_version, 2);
        assert_eq!(t.held_len(), 2, "other source's and already-acked messages stay");
    }

    #[test]
    fn delayed_messages_fall_due() {
        let profile = FaultProfile { delay_pm: 1000, max_delay_us: 1_000, ..FaultProfile::quiet() };
        let mut t = ChaosTransport::new(profile, 3);
        assert!(t.send(vec![msg(1, 0, 1)], 0).is_empty());
        let due_at = t.next_event_us(0).expect("one delayed message");
        assert!(due_at > 0 && due_at < 1_000);
        assert!(t.poll(due_at - 1).is_empty());
        assert_eq!(t.poll(due_at).len(), 1);
        assert_eq!(t.next_event_us(due_at), None);
    }

    #[test]
    fn crashed_source_faults_queries_until_restart() {
        let profile =
            FaultProfile { crash_pm: 1000, crash_down_us: 500_000, ..FaultProfile::quiet() };
        let mut t = ChaosTransport::new(profile, 5);
        let Some(QueryFault::SourceDown { until_us }) = t.query_fault(SourceId(0), 0) else {
            panic!("source must crash");
        };
        assert_eq!(until_us, 500_000);
        // While down, messages from that source are held…
        assert!(t.send(vec![msg(1, 0, 1)], 100).is_empty());
        // …and delivered after the restart.
        assert_eq!(t.poll(until_us).len(), 1);
    }

    #[test]
    fn replay_covers_already_delivered_messages() {
        // A quiet transport delivers immediately — nack has nothing, but a
        // restarted warehouse still gets everything back via replay.
        let mut t = ChaosTransport::new(FaultProfile::quiet(), 1);
        let delivered = t.send(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 1, 1)], 0);
        assert_eq!(delivered.len(), 3);
        assert!(t.nack(SourceId(0), 0).is_empty(), "nothing held");
        let replayed = t.replay(SourceId(0), 0);
        assert_eq!(replayed.iter().map(|m| m.source_version).collect::<Vec<_>>(), vec![1, 2]);
        // Replay respects the durable high-water mark…
        assert_eq!(t.replay(SourceId(0), 1).len(), 1);
        // …and an ack makes the wrapper forget for good.
        t.ack(SourceId(0), 2);
        assert!(t.replay(SourceId(0), 0).is_empty());
        assert_eq!(t.sent_len(), 1, "source 1's message is still remembered");
    }

    #[test]
    fn replay_drains_held_copies() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        assert!(t.send(vec![msg(1, 0, 1)], 0).is_empty(), "dropped");
        assert_eq!(t.held_len(), 1);
        let replayed = t.replay(SourceId(0), 0);
        assert_eq!(replayed.len(), 1);
        assert_eq!(t.held_len(), 0, "the held copy will not fall due again");
    }

    #[test]
    fn direct_replay_defaults_to_nack() {
        let mut t = Direct;
        t.send(vec![msg(1, 0, 1)], 0);
        assert!(t.replay(SourceId(0), 0).is_empty());
        t.ack(SourceId(0), 1); // default no-op must not panic
    }

    #[test]
    fn duplication_delivers_twice_with_counter() {
        let mut t = ChaosTransport::new(FaultProfile { dup_pm: 1000, ..FaultProfile::quiet() }, 9);
        let delivered = t.send(vec![msg(1, 0, 1)], 0);
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].id, delivered[1].id);
        assert_eq!(t.injected_total(), 1);
    }
}
