//! A tiny seeded PRNG, replacing the `rand` crate (unavailable offline).
//!
//! [`Rng`] is SplitMix64 (Steele, Lea & Flood 2014): 64 bits of state, one
//! add + two xor-multiply mixes per output, passes BigCrush, and — the
//! property the testbed actually needs — identical streams for identical
//! seeds on every platform. The API mirrors the small slice of `rand` the
//! workspace used: `gen_range(lo..hi)` over the integer types, plus a few
//! helpers the randomized test suites want.
//!
//! Range reduction is by modulo, which has negligible bias for the spans
//! used here (≤ 2⁶³ ≪ 2⁶⁴) and keeps the generator trivially auditable.

use std::ops::Range;

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `range` (half-open, must be non-empty).
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `num / denom`.
    pub fn gen_ratio(&mut self, num: u64, denom: u64) -> bool {
        debug_assert!(num <= denom && denom > 0);
        self.next_u64() % denom < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..i + 1);
            items.swap(i, j);
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait RangeSample: Copy {
    /// Uniform sample from the half-open `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_unsigned_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_unsigned_sample!(u32, u64, usize);

impl RangeSample for i64 {
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference output for seed 1234567 (from the SplitMix64 paper's
        // reference C implementation).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let u = r.gen_range(10..20usize);
            assert!((10..20).contains(&u));
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let w = r.gen_range(0..1u64);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn range_values_cover_the_span() {
        let mut r = Rng::new(99);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
