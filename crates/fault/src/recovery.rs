//! Delivery recovery: the receiver-side sequencer that turns the chaos
//! transport's lossy, duplicated, out-of-order stream back into exactly-once
//! in-order per-source delivery.
//!
//! The UMQ's dependency analysis chains a source's updates by *queue
//! position*, so within-source version order on enqueue is a correctness
//! requirement, not a nicety; cross-source interleaving stays free. The
//! sequencer dedupes by (source, version) — equivalent to `UpdateId` dedupe,
//! since versions are dense per source — buffers out-of-order arrivals, and
//! NACKs the transport on gaps so dropped messages are refetched from the
//! wrapper's send log.

use std::collections::{BTreeMap, HashMap};

use dyno_obs::{Collector, Counter};
use dyno_source::{SourceId, UpdateMessage};

use crate::transport::Transport;

/// Recovery-side registry handles.
#[derive(Debug, Clone, Default)]
struct RecoveryCounters {
    duplicates_dropped: Counter,
    out_of_order: Counter,
    gap_refetches: Counter,
}

impl RecoveryCounters {
    fn bind(obs: &Collector) -> Self {
        RecoveryCounters {
            duplicates_dropped: obs.counter("fault.duplicates_dropped"),
            out_of_order: obs.counter("fault.out_of_order"),
            gap_refetches: obs.counter("fault.gap_refetches"),
        }
    }
}

/// What [`Sequencer::offer`] decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Offer {
    /// Redundant copy: at or below the release floor, or already buffered.
    pub duplicate: bool,
    /// Arrived ahead of a gap (`seq > floor + 1`).
    pub out_of_order: bool,
}

/// The message-agnostic resequencing core: per-stream exactly-once, in-order
/// release via a dense sequence number. Streams are keyed by `u32` (a
/// `SourceId` for warehouse ingress, a peer replica id for the replication
/// engine); the caller owns counters and gap refetching, the sequencer owns
/// floors and reorder buffers.
#[derive(Debug, Clone, Default)]
pub struct Sequencer<M> {
    /// Highest sequence released to the consumer, per stream.
    delivered: HashMap<u32, u64>,
    /// Out-of-order arrivals waiting for their predecessors, keyed by
    /// stream then sequence (BTreeMaps so release order is deterministic).
    buffer: BTreeMap<u32, BTreeMap<u64, M>>,
}

impl<M> Sequencer<M> {
    /// A sequencer whose baseline is the per-stream sequences already known
    /// to the consumer (messages at or below the baseline are duplicates).
    pub fn new(baseline: HashMap<u32, u64>) -> Self {
        Sequencer { delivered: baseline, buffer: BTreeMap::new() }
    }

    /// Highest sequence released for `stream` (0 if unknown).
    pub fn delivered(&self, stream: u32) -> u64 {
        self.delivered.get(&stream).copied().unwrap_or(0)
    }

    /// Registers `stream` and raises its release floor to at least `seq`
    /// (used when restoring durable floors after a restart).
    pub fn set_floor(&mut self, stream: u32, seq: u64) {
        let d = self.delivered.entry(stream).or_insert(0);
        *d = (*d).max(seq);
    }

    /// Messages currently parked in reorder buffers.
    pub fn buffered(&self) -> usize {
        self.buffer.values().map(BTreeMap::len).sum()
    }

    /// Every known stream (released or buffered), ascending.
    pub fn streams(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self.delivered.keys().copied().collect();
        s.sort_unstable();
        s
    }

    /// Offers one message; duplicates are discarded, everything else parks
    /// in the reorder buffer until [`Sequencer::pop_ready`].
    pub fn offer(&mut self, stream: u32, seq: u64, m: M) -> Offer {
        let d = self.delivered.entry(stream).or_insert(0);
        if seq <= *d {
            return Offer { duplicate: true, out_of_order: false };
        }
        let out_of_order = seq > *d + 1;
        let duplicate = self.buffer.entry(stream).or_default().insert(seq, m).is_some();
        Offer { duplicate, out_of_order }
    }

    /// Releases every contiguous prefix (per stream, ascending stream order)
    /// into `out`, advancing the floors.
    pub fn pop_ready(&mut self, out: &mut Vec<M>) {
        for (s, buf) in self.buffer.iter_mut() {
            let d = self.delivered.entry(*s).or_insert(0);
            while let Some(entry) = buf.first_entry() {
                if *entry.key() == *d + 1 {
                    out.push(entry.remove());
                    *d += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Streams still holding parked messages, with their release floors —
    /// i.e. where the caller should refetch `(floor, first_buffered)` from.
    pub fn gaps(&self) -> Vec<(u32, u64)> {
        self.buffer
            .iter()
            .filter(|(_, buf)| !buf.is_empty())
            .map(|(&s, _)| (s, self.delivered(s)))
            .collect()
    }
}

/// Per-source resequencing state between a [`Transport`] and the consumer:
/// a [`Sequencer`] keyed by source id plus the transport-facing NACK loop
/// and fault counters.
#[derive(Debug, Clone)]
pub struct Recovery {
    seq: Sequencer<UpdateMessage>,
    /// False = broken-recovery ablation: everything passes through verbatim
    /// (duplicates, gaps and all), which demonstrably violates convergence.
    enabled: bool,
    counters: RecoveryCounters,
}

impl Recovery {
    /// A sequencer whose baseline is the per-source versions already known
    /// to the consumer (messages at or below the baseline are duplicates).
    pub fn new(baseline: HashMap<SourceId, u64>) -> Self {
        Recovery {
            seq: Sequencer::new(baseline.into_iter().map(|(s, v)| (s.0, v)).collect()),
            enabled: true,
            counters: RecoveryCounters::default(),
        }
    }

    /// Binds the `fault.duplicates_dropped` / `fault.out_of_order` /
    /// `fault.gap_refetches` counters into a collector's registry.
    pub fn with_obs(mut self, obs: &Collector) -> Self {
        self.counters = RecoveryCounters::bind(obs);
        self
    }

    /// Disables dedupe/resequencing (the deliberately broken recovery path
    /// used to prove the chaos suite can fail).
    pub fn with_recovery(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Highest version released for `source`.
    pub fn delivered(&self, source: SourceId) -> u64 {
        self.seq.delivered(source.0)
    }

    /// Messages currently parked in reorder buffers.
    pub fn buffered(&self) -> usize {
        self.seq.buffered()
    }

    /// Feeds transport deliveries through the sequencer; released in-order
    /// messages are appended to `out`. Gaps trigger a NACK/refetch against
    /// the transport.
    pub fn admit(
        &mut self,
        msgs: Vec<UpdateMessage>,
        transport: &mut dyn Transport,
        out: &mut Vec<UpdateMessage>,
    ) {
        if !self.enabled {
            out.extend(msgs);
            return;
        }
        for m in msgs {
            self.insert(m);
        }
        self.release(transport, out);
    }

    /// Forces delivery of everything `source` has committed up to `version`
    /// (the consistency-critical flush: a maintenance query has just *seen*
    /// that state, so compensation needs the messages now, not later).
    pub fn sync_to(
        &mut self,
        source: SourceId,
        version: u64,
        transport: &mut dyn Transport,
        out: &mut Vec<UpdateMessage>,
    ) {
        if !self.enabled {
            return;
        }
        let d = self.delivered(source);
        if d >= version {
            return;
        }
        self.counters.gap_refetches.inc();
        let refetched = transport.nack(source, d);
        for m in refetched {
            self.insert(m);
        }
        self.release(transport, out);
    }

    /// Final-drain flush: refetches every held message for every known
    /// source (quiescence must not strand messages inside the transport).
    pub fn flush_all(&mut self, transport: &mut dyn Transport, out: &mut Vec<UpdateMessage>) {
        if !self.enabled {
            out.extend(transport.poll(u64::MAX));
            return;
        }
        for s in self.seq.streams() {
            let refetched = transport.nack(SourceId(s), self.seq.delivered(s));
            for m in refetched {
                self.insert(m);
            }
        }
        self.release(transport, out);
    }

    fn insert(&mut self, m: UpdateMessage) {
        let offer = self.seq.offer(m.source.0, m.source_version, m);
        if offer.out_of_order {
            self.counters.out_of_order.inc();
        }
        if offer.duplicate {
            self.counters.duplicates_dropped.inc();
        }
    }

    /// Releases every contiguous prefix; NACKs once per gapped source and
    /// retries until the transport has nothing more to give.
    fn release(&mut self, transport: &mut dyn Transport, out: &mut Vec<UpdateMessage>) {
        loop {
            self.seq.pop_ready(out);
            let gaps = self.seq.gaps();
            if gaps.is_empty() {
                return;
            }
            let mut refetched = Vec::new();
            for (s, d) in gaps {
                self.counters.gap_refetches.inc();
                refetched.extend(transport.nack(SourceId(s), d));
            }
            if refetched.is_empty() {
                // The missing messages have not reached the transport yet
                // (e.g. still buffered at the wrapper); they stay parked in
                // the reorder buffer until a later admit.
                return;
            }
            for m in refetched {
                self.insert(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FaultProfile;
    use crate::transport::{ChaosTransport, Direct};
    use dyno_relational::{AttrType, DataUpdate, Delta, Schema, SourceUpdate, Tuple};
    use dyno_source::UpdateId;

    fn msg(id: u64, source: u32, version: u64) -> UpdateMessage {
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: version,
            update: SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([id as i64])]).unwrap(),
            )),
        }
    }

    fn versions(out: &[UpdateMessage]) -> Vec<(u32, u64)> {
        out.iter().map(|m| (m.source.0, m.source_version)).collect()
    }

    #[test]
    fn sequencer_is_message_agnostic() {
        let mut s: Sequencer<&'static str> = Sequencer::new(HashMap::new());
        assert!(s.offer(7, 2, "b").out_of_order, "arrived over a gap");
        assert!(s.offer(7, 2, "b2").duplicate, "buffer duplicate");
        let mut out = Vec::new();
        s.pop_ready(&mut out);
        assert!(out.is_empty());
        assert_eq!(s.gaps(), vec![(7, 0)]);
        let first = s.offer(7, 1, "a");
        assert!(!first.duplicate && !first.out_of_order);
        s.pop_ready(&mut out);
        assert_eq!(out, vec!["a", "b2"], "latest copy wins the buffer slot");
        assert_eq!(s.delivered(7), 2);
        assert!(s.offer(7, 2, "b3").duplicate, "below the floor");
        assert_eq!(s.streams(), vec![7]);
    }

    #[test]
    fn sequencer_set_floor_only_raises() {
        let mut s: Sequencer<u8> = Sequencer::new(HashMap::new());
        s.set_floor(1, 5);
        s.set_floor(1, 3);
        assert_eq!(s.delivered(1), 5);
        assert!(s.offer(1, 4, 0).duplicate);
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 1, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (1, 1)]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(1, 0, 1), msg(2, 0, 2)], &mut t, &mut out);
        r.admit(vec![msg(2, 0, 2)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2)], "each version released once");
    }

    #[test]
    fn out_of_order_is_buffered_then_released_in_order() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(3, 0, 3), msg(2, 0, 2)], &mut t, &mut out);
        assert!(out.is_empty(), "v1 missing: nothing released");
        assert_eq!(r.buffered(), 2);
        r.admit(vec![msg(1, 0, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn gap_is_refetched_from_the_transport() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        // v1 and v2 are dropped into the transport's hold…
        assert!(t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0).is_empty());
        let mut r = Recovery::new(HashMap::new());
        let mut out = Vec::new();
        // …v3 arrives directly; the gap NACK pulls v1 and v2 back.
        r.admit(vec![msg(3, 0, 3)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn sync_to_force_delivers_known_state() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        assert!(t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0).is_empty());
        let mut r = Recovery::new(HashMap::new());
        let mut out = Vec::new();
        // A query just saw source 0 at version 2: everything through v2 must
        // be delivered now for compensation to be complete.
        r.sync_to(SourceId(0), 2, &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2)]);
        assert_eq!(r.delivered(SourceId(0)), 2);
    }

    #[test]
    fn baseline_filters_pre_initialization_messages() {
        let mut r = Recovery::new(HashMap::from([(SourceId(0), 2)]));
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 0, 3)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 3)], "baseline versions are duplicates");
    }

    #[test]
    fn disabled_recovery_passes_everything_verbatim() {
        let mut r = Recovery::new(HashMap::new()).with_recovery(false);
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(2, 0, 2), msg(1, 0, 1), msg(1, 0, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 2), (0, 1), (0, 1)], "dups and disorder leak");
    }

    #[test]
    fn flush_all_drains_the_transport() {
        let profile = FaultProfile { delay_pm: 500, drop_pm: 500, ..FaultProfile::quiet() };
        let mut t = ChaosTransport::new(FaultProfile { max_delay_us: 1_000_000, ..profile }, 4);
        let sent: Vec<UpdateMessage> = (1..=20).map(|v| msg(v, 0, v)).collect();
        let mut r = Recovery::new(HashMap::from([(SourceId(0), 0)]));
        let mut out = Vec::new();
        let delivered = t.send(sent, 0);
        r.admit(delivered, &mut t, &mut out);
        r.flush_all(&mut t, &mut out);
        assert_eq!(out.len(), 20, "every message exactly once");
        assert!(versions(&out).windows(2).all(|w| w[0].1 + 1 == w[1].1));
        assert_eq!(t.held_len(), 0);
    }
}
