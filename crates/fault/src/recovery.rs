//! Delivery recovery: the receiver-side sequencer that turns the chaos
//! transport's lossy, duplicated, out-of-order stream back into exactly-once
//! in-order per-source delivery.
//!
//! The UMQ's dependency analysis chains a source's updates by *queue
//! position*, so within-source version order on enqueue is a correctness
//! requirement, not a nicety; cross-source interleaving stays free. The
//! sequencer dedupes by (source, version) — equivalent to `UpdateId` dedupe,
//! since versions are dense per source — buffers out-of-order arrivals, and
//! NACKs the transport on gaps so dropped messages are refetched from the
//! wrapper's send log.

use std::collections::{BTreeMap, HashMap};

use dyno_obs::{Collector, Counter};
use dyno_source::{SourceId, UpdateMessage};

use crate::transport::Transport;

/// Recovery-side registry handles.
#[derive(Debug, Clone, Default)]
struct RecoveryCounters {
    duplicates_dropped: Counter,
    out_of_order: Counter,
    gap_refetches: Counter,
}

impl RecoveryCounters {
    fn bind(obs: &Collector) -> Self {
        RecoveryCounters {
            duplicates_dropped: obs.counter("fault.duplicates_dropped"),
            out_of_order: obs.counter("fault.out_of_order"),
            gap_refetches: obs.counter("fault.gap_refetches"),
        }
    }
}

/// Per-source resequencing state between a [`Transport`] and the consumer.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Highest version released to the consumer, per source.
    delivered: HashMap<SourceId, u64>,
    /// Out-of-order arrivals waiting for their predecessors, keyed by
    /// source then version (BTreeMaps so release order is deterministic).
    buffer: BTreeMap<SourceId, BTreeMap<u64, UpdateMessage>>,
    /// False = broken-recovery ablation: everything passes through verbatim
    /// (duplicates, gaps and all), which demonstrably violates convergence.
    enabled: bool,
    counters: RecoveryCounters,
}

impl Recovery {
    /// A sequencer whose baseline is the per-source versions already known
    /// to the consumer (messages at or below the baseline are duplicates).
    pub fn new(baseline: HashMap<SourceId, u64>) -> Self {
        Recovery {
            delivered: baseline,
            buffer: BTreeMap::new(),
            enabled: true,
            counters: RecoveryCounters::default(),
        }
    }

    /// Binds the `fault.duplicates_dropped` / `fault.out_of_order` /
    /// `fault.gap_refetches` counters into a collector's registry.
    pub fn with_obs(mut self, obs: &Collector) -> Self {
        self.counters = RecoveryCounters::bind(obs);
        self
    }

    /// Disables dedupe/resequencing (the deliberately broken recovery path
    /// used to prove the chaos suite can fail).
    pub fn with_recovery(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Highest version released for `source`.
    pub fn delivered(&self, source: SourceId) -> u64 {
        self.delivered.get(&source).copied().unwrap_or(0)
    }

    /// Messages currently parked in reorder buffers.
    pub fn buffered(&self) -> usize {
        self.buffer.values().map(BTreeMap::len).sum()
    }

    /// Feeds transport deliveries through the sequencer; released in-order
    /// messages are appended to `out`. Gaps trigger a NACK/refetch against
    /// the transport.
    pub fn admit(
        &mut self,
        msgs: Vec<UpdateMessage>,
        transport: &mut dyn Transport,
        out: &mut Vec<UpdateMessage>,
    ) {
        if !self.enabled {
            out.extend(msgs);
            return;
        }
        for m in msgs {
            self.insert(m);
        }
        self.release(transport, out);
    }

    /// Forces delivery of everything `source` has committed up to `version`
    /// (the consistency-critical flush: a maintenance query has just *seen*
    /// that state, so compensation needs the messages now, not later).
    pub fn sync_to(
        &mut self,
        source: SourceId,
        version: u64,
        transport: &mut dyn Transport,
        out: &mut Vec<UpdateMessage>,
    ) {
        if !self.enabled {
            return;
        }
        let d = self.delivered(source);
        if d >= version {
            return;
        }
        self.counters.gap_refetches.inc();
        let refetched = transport.nack(source, d);
        for m in refetched {
            self.insert(m);
        }
        self.release(transport, out);
    }

    /// Final-drain flush: refetches every held message for every known
    /// source (quiescence must not strand messages inside the transport).
    pub fn flush_all(&mut self, transport: &mut dyn Transport, out: &mut Vec<UpdateMessage>) {
        if !self.enabled {
            out.extend(transport.poll(u64::MAX));
            return;
        }
        let mut sources: Vec<SourceId> = self.delivered.keys().copied().collect();
        sources.sort_unstable();
        for s in sources {
            let refetched = transport.nack(s, self.delivered(s));
            for m in refetched {
                self.insert(m);
            }
        }
        self.release(transport, out);
    }

    fn insert(&mut self, m: UpdateMessage) {
        let d = self.delivered.entry(m.source).or_insert(0);
        if m.source_version <= *d {
            self.counters.duplicates_dropped.inc();
            return;
        }
        if m.source_version > *d + 1 {
            self.counters.out_of_order.inc();
        }
        let buf = self.buffer.entry(m.source).or_default();
        if buf.insert(m.source_version, m).is_some() {
            self.counters.duplicates_dropped.inc();
        }
    }

    /// Releases every contiguous prefix; NACKs once per gapped source and
    /// retries until the transport has nothing more to give.
    fn release(&mut self, transport: &mut dyn Transport, out: &mut Vec<UpdateMessage>) {
        loop {
            self.pop_ready(out);
            let gaps: Vec<(SourceId, u64)> = self
                .buffer
                .iter()
                .filter(|(_, buf)| !buf.is_empty())
                .map(|(&s, _)| (s, self.delivered(s)))
                .collect();
            if gaps.is_empty() {
                return;
            }
            let mut refetched = Vec::new();
            for (s, d) in gaps {
                self.counters.gap_refetches.inc();
                refetched.extend(transport.nack(s, d));
            }
            if refetched.is_empty() {
                // The missing messages have not reached the transport yet
                // (e.g. still buffered at the wrapper); they stay parked in
                // the reorder buffer until a later admit.
                return;
            }
            for m in refetched {
                self.insert(m);
            }
        }
    }

    fn pop_ready(&mut self, out: &mut Vec<UpdateMessage>) {
        for (s, buf) in self.buffer.iter_mut() {
            let d = self.delivered.entry(*s).or_insert(0);
            while let Some(entry) = buf.first_entry() {
                if *entry.key() == *d + 1 {
                    out.push(entry.remove());
                    *d += 1;
                } else {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FaultProfile;
    use crate::transport::{ChaosTransport, Direct};
    use dyno_relational::{AttrType, DataUpdate, Delta, Schema, SourceUpdate, Tuple};
    use dyno_source::UpdateId;

    fn msg(id: u64, source: u32, version: u64) -> UpdateMessage {
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: version,
            update: SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([id as i64])]).unwrap(),
            )),
        }
    }

    fn versions(out: &[UpdateMessage]) -> Vec<(u32, u64)> {
        out.iter().map(|m| (m.source.0, m.source_version)).collect()
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 1, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (1, 1)]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(1, 0, 1), msg(2, 0, 2)], &mut t, &mut out);
        r.admit(vec![msg(2, 0, 2)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2)], "each version released once");
    }

    #[test]
    fn out_of_order_is_buffered_then_released_in_order() {
        let mut r = Recovery::new(HashMap::new());
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(3, 0, 3), msg(2, 0, 2)], &mut t, &mut out);
        assert!(out.is_empty(), "v1 missing: nothing released");
        assert_eq!(r.buffered(), 2);
        r.admit(vec![msg(1, 0, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn gap_is_refetched_from_the_transport() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        // v1 and v2 are dropped into the transport's hold…
        assert!(t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0).is_empty());
        let mut r = Recovery::new(HashMap::new());
        let mut out = Vec::new();
        // …v3 arrives directly; the gap NACK pulls v1 and v2 back.
        r.admit(vec![msg(3, 0, 3)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn sync_to_force_delivers_known_state() {
        let mut t = ChaosTransport::new(FaultProfile { drop_pm: 1000, ..FaultProfile::quiet() }, 1);
        assert!(t.send(vec![msg(1, 0, 1), msg(2, 0, 2)], 0).is_empty());
        let mut r = Recovery::new(HashMap::new());
        let mut out = Vec::new();
        // A query just saw source 0 at version 2: everything through v2 must
        // be delivered now for compensation to be complete.
        r.sync_to(SourceId(0), 2, &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 1), (0, 2)]);
        assert_eq!(r.delivered(SourceId(0)), 2);
    }

    #[test]
    fn baseline_filters_pre_initialization_messages() {
        let mut r = Recovery::new(HashMap::from([(SourceId(0), 2)]));
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(1, 0, 1), msg(2, 0, 2), msg(3, 0, 3)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 3)], "baseline versions are duplicates");
    }

    #[test]
    fn disabled_recovery_passes_everything_verbatim() {
        let mut r = Recovery::new(HashMap::new()).with_recovery(false);
        let mut t = Direct;
        let mut out = Vec::new();
        r.admit(vec![msg(2, 0, 2), msg(1, 0, 1), msg(1, 0, 1)], &mut t, &mut out);
        assert_eq!(versions(&out), vec![(0, 2), (0, 1), (0, 1)], "dups and disorder leak");
    }

    #[test]
    fn flush_all_drains_the_transport() {
        let profile = FaultProfile { delay_pm: 500, drop_pm: 500, ..FaultProfile::quiet() };
        let mut t = ChaosTransport::new(FaultProfile { max_delay_us: 1_000_000, ..profile }, 4);
        let sent: Vec<UpdateMessage> = (1..=20).map(|v| msg(v, 0, v)).collect();
        let mut r = Recovery::new(HashMap::from([(SourceId(0), 0)]));
        let mut out = Vec::new();
        let delivered = t.send(sent, 0);
        r.admit(delivered, &mut t, &mut out);
        r.flush_all(&mut t, &mut out);
        assert_eq!(out.len(), 20, "every message exactly once");
        assert!(versions(&out).windows(2).all(|w| w[0].1 + 1 == w[1].1));
        assert_eq!(t.held_len(), 0);
    }
}
