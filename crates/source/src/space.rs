//! The remote source space: all source servers plus the wrapper layer that
//! stamps committed updates into [`UpdateMessage`]s.

use std::collections::HashMap;

use dyno_relational::exec::{RelationProvider, TableSlice};
use dyno_relational::{HashIndex, RelationalError, SourceUpdate};

use crate::id::{SourceId, UpdateId};
use crate::infospace::InfoSpace;
use crate::message::UpdateMessage;
use crate::server::SourceServer;

/// The collection of autonomous sources, with global update numbering and
/// relation-name routing.
#[derive(Debug, Clone, Default)]
pub struct SourceSpace {
    servers: Vec<SourceServer>,
    next_update: u64,
    info: InfoSpace,
}

impl SourceSpace {
    /// An empty source space.
    pub fn new() -> Self {
        SourceSpace::default()
    }

    /// Adds a server; its id must equal its index.
    pub fn add_server(&mut self, server: SourceServer) {
        assert_eq!(
            server.id().0 as usize,
            self.servers.len(),
            "server ids must be assigned densely in registration order"
        );
        self.servers.push(server);
    }

    /// Access to the information space.
    pub fn info(&self) -> &InfoSpace {
        &self.info
    }

    /// Mutable access to the information space (registration).
    pub fn info_mut(&mut self) -> &mut InfoSpace {
        &mut self.info
    }

    /// All servers.
    pub fn servers(&self) -> &[SourceServer] {
        &self.servers
    }

    /// Looks up a server.
    pub fn server(&self, id: SourceId) -> &SourceServer {
        &self.servers[id.0 as usize]
    }

    /// Mutable server lookup.
    pub fn server_mut(&mut self, id: SourceId) -> &mut SourceServer {
        &mut self.servers[id.0 as usize]
    }

    /// The source currently hosting `relation`, if any. Relation names are
    /// globally unique across the source space (as in the paper's testbed).
    pub fn locate(&self, relation: &str) -> Option<SourceId> {
        self.servers.iter().find(|s| s.catalog().contains(relation)).map(|s| s.id())
    }

    /// Declares a secondary hash index on `relation` at whichever source
    /// hosts it. Fails when no source hosts the relation.
    pub fn create_index(&mut self, relation: &str, attrs: &[&str]) -> Result<(), RelationalError> {
        let id = self
            .locate(relation)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: relation.to_string() })?;
        self.server_mut(id).create_index(relation, attrs)
    }

    /// Commits an update at a source, returning the stamped wrapper message.
    /// Fails (changing nothing) if the update does not apply to the source's
    /// current schema.
    pub fn commit(
        &mut self,
        source: SourceId,
        update: SourceUpdate,
    ) -> Result<UpdateMessage, RelationalError> {
        let version = self.server_mut(source).commit(update.clone())?;
        let id = UpdateId(self.next_update);
        self.next_update += 1;
        Ok(UpdateMessage { id, source, source_version: version, update })
    }

    /// A provider over the union of all current source catalogs. Relation
    /// names are globally unique, so the union is unambiguous. Queries
    /// evaluated through this provider see each source's **current** state —
    /// the root of all maintenance anomalies.
    pub fn provider(&self) -> UnionProvider<'_> {
        UnionProvider { space: self }
    }

    /// Per-source versions, as a map — a "vector clock" describing the
    /// current global state (used by consistency checkers).
    pub fn versions(&self) -> HashMap<SourceId, u64> {
        self.servers.iter().map(|s| (s.id(), s.version())).collect()
    }
}

/// [`RelationProvider`] over the union of all source catalogs.
pub struct UnionProvider<'a> {
    space: &'a SourceSpace,
}

impl RelationProvider for UnionProvider<'_> {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        for s in &self.space.servers {
            if s.catalog().contains(name) {
                return s.catalog().table(name);
            }
        }
        Err(RelationalError::UnknownRelation { relation: name.to_string() })
    }

    fn index_on(&self, name: &str, attrs: &[&str]) -> Option<&HashIndex> {
        self.space
            .servers
            .iter()
            .find(|s| s.catalog().contains(name))
            .and_then(|s| s.catalog().index_on(name, attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{
        AttrType, Catalog, DataUpdate, Delta, Relation, Schema, SchemaChange, Tuple, Value,
    };

    fn space() -> SourceSpace {
        let mut sp = SourceSpace::new();
        for (i, rel) in ["R", "S"].iter().enumerate() {
            let mut c = Catalog::new();
            c.add_relation(
                Relation::from_tuples(
                    Schema::of(rel, &[("a", AttrType::Int)]),
                    [Tuple::of([Value::from(i as i64)])],
                )
                .unwrap(),
            )
            .unwrap();
            sp.add_server(SourceServer::new(SourceId(i as u32), format!("srv{i}"), c));
        }
        sp
    }

    #[test]
    fn routing() {
        let sp = space();
        assert_eq!(sp.locate("R"), Some(SourceId(0)));
        assert_eq!(sp.locate("S"), Some(SourceId(1)));
        assert_eq!(sp.locate("T"), None);
    }

    #[test]
    fn commit_stamps_global_ids() {
        let mut sp = space();
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        let m1 = sp
            .commit(
                SourceId(0),
                SourceUpdate::Data(DataUpdate::new(
                    Delta::inserts(schema.clone(), [Tuple::of([7i64])]).unwrap(),
                )),
            )
            .unwrap();
        let m2 = sp
            .commit(
                SourceId(1),
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: "S".into(),
                    to: "S2".into(),
                }),
            )
            .unwrap();
        assert!(m1.id < m2.id);
        assert_eq!(m1.source_version, 1);
        assert_eq!(m2.source_version, 1);
        assert_eq!(sp.locate("S2"), Some(SourceId(1)));
    }

    #[test]
    fn union_provider_reflects_current_state() {
        let mut sp = space();
        sp.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "S".into() }),
        )
        .unwrap();
        let p = sp.provider();
        assert!(p.table("R").is_ok());
        assert!(p.table("S").unwrap_err().is_schema_conflict());
    }

    #[test]
    fn failed_commit_does_not_consume_id() {
        let mut sp = space();
        let err = sp.commit(
            SourceId(0),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Ghost".into() }),
        );
        assert!(err.is_err());
        let ok = sp
            .commit(
                SourceId(0),
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: "R".into(),
                    to: "R2".into(),
                }),
            )
            .unwrap();
        assert_eq!(ok.id, UpdateId(0), "ids are dense over successful commits");
    }
}
