//! Update messages — what wrappers emit toward the view manager's UMQ.

use std::fmt;

use dyno_relational::SourceUpdate;

use crate::id::{SourceId, UpdateId};

/// A committed source update as reported by a wrapper.
///
/// The wrapper is "intelligent" (paper Section 2): it reports not only the
/// raw data delta but also schema-level changes, the committing source, and
/// that source's local commit version (used for semantic-dependency
/// ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMessage {
    /// Global id, assigned in commit order.
    pub id: UpdateId,
    /// The committing source.
    pub source: SourceId,
    /// The source's local version after this commit (1-based).
    pub source_version: u64,
    /// The update payload.
    pub update: SourceUpdate,
}

impl UpdateMessage {
    /// True iff this message carries a schema change.
    pub fn is_schema_change(&self) -> bool {
        self.update.is_schema_change()
    }

    /// Relations this update touches (names at commit time).
    pub fn touched_relations(&self) -> Vec<&str> {
        self.update.touched_relations()
    }
}

impl fmt::Display for UpdateMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}: {}", self.id, self.source, self.source_version, self.update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::SchemaChange;

    #[test]
    fn message_accessors() {
        let m = UpdateMessage {
            id: UpdateId(1),
            source: SourceId(0),
            source_version: 3,
            update: SourceUpdate::Schema(SchemaChange::DropRelation { relation: "R".into() }),
        };
        assert!(m.is_schema_change());
        assert_eq!(m.touched_relations(), vec!["R"]);
        assert!(m.to_string().contains("DS0"));
    }
}
