//! The information space: meta-knowledge about how dropped schema elements
//! can be replaced.
//!
//! This models the substrate the EVE system [Lee/Nica/Rundensteiner, TKDE
//! 2002] assumes for view synchronization: when a source drops an attribute
//! or a relation, the integrator may know an *alternative* source that can
//! supply equivalent information — e.g. in the paper's running example, when
//! `Catalog.Review` is dropped, `ReaderDigest.Comments` joined on
//! `Catalog.Title = ReaderDigest.Article` replaces it (Query (4)); and when
//! the retailer's mapping collapses `Store`/`Item` into `StoreItems`
//! (Figure 2), the replacement relation covers all their attributes.

use dyno_relational::ColRef;

/// Replacement for a dropped attribute: an attribute of another relation,
/// reachable through an equi-join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeReplacement {
    /// The attribute that disappeared.
    pub dropped: ColRef,
    /// The replacement attribute.
    pub replacement: ColRef,
    /// Equi-join condition linking the replacement relation into the view.
    /// The left side refers to a relation already in the view (or to the
    /// dropped attribute's relation); the right side to the replacement's
    /// relation.
    pub join: (ColRef, ColRef),
}

/// Replacement for one or more dropped relations by a single new relation
/// with an attribute mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationReplacement {
    /// Relations that disappeared.
    pub dropped: Vec<String>,
    /// The replacement relation's name.
    pub replacement: String,
    /// Old column → new column, for every old column the replacement covers.
    pub attr_map: Vec<(ColRef, ColRef)>,
}

impl RelationReplacement {
    /// Maps an old column reference through the replacement, if covered.
    pub fn map_col(&self, col: &ColRef) -> Option<ColRef> {
        self.attr_map.iter().find(|(old, _)| old == col).map(|(_, new)| new.clone())
    }
}

/// The integrator's meta-knowledge registry.
#[derive(Debug, Clone, Default)]
pub struct InfoSpace {
    attr_replacements: Vec<AttributeReplacement>,
    relation_replacements: Vec<RelationReplacement>,
}

impl InfoSpace {
    /// Empty information space.
    pub fn new() -> Self {
        InfoSpace::default()
    }

    /// Registers an attribute replacement.
    pub fn add_attr_replacement(&mut self, r: AttributeReplacement) {
        self.attr_replacements.push(r);
    }

    /// Registers a relation replacement.
    pub fn add_relation_replacement(&mut self, r: RelationReplacement) {
        self.relation_replacements.push(r);
    }

    /// Finds a replacement for a dropped attribute.
    pub fn attr_replacement(&self, dropped: &ColRef) -> Option<&AttributeReplacement> {
        self.attr_replacements.iter().find(|r| &r.dropped == dropped)
    }

    /// Finds a replacement covering a dropped relation.
    pub fn relation_replacement(&self, dropped: &str) -> Option<&RelationReplacement> {
        self.relation_replacements.iter().find(|r| r.dropped.iter().any(|d| d == dropped))
    }

    /// Finds the replacement entry whose `dropped` set matches the given
    /// relations exactly (used for `ReplaceRelations` changes).
    pub fn replacement_for_set(&self, dropped: &[String]) -> Option<&RelationReplacement> {
        self.relation_replacements.iter().find(|r| {
            r.dropped.len() == dropped.len() && dropped.iter().all(|d| r.dropped.contains(d))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> InfoSpace {
        let mut s = InfoSpace::new();
        s.add_attr_replacement(AttributeReplacement {
            dropped: ColRef::new("Catalog", "Review"),
            replacement: ColRef::new("ReaderDigest", "Comments"),
            join: (ColRef::new("Catalog", "Title"), ColRef::new("ReaderDigest", "Article")),
        });
        s.add_relation_replacement(RelationReplacement {
            dropped: vec!["Store".into(), "Item".into()],
            replacement: "StoreItems".into(),
            attr_map: vec![
                (ColRef::new("Store", "StoreName"), ColRef::new("StoreItems", "StoreName")),
                (ColRef::new("Item", "Book"), ColRef::new("StoreItems", "Book")),
            ],
        });
        s
    }

    #[test]
    fn attr_lookup() {
        let s = space();
        let r = s.attr_replacement(&ColRef::new("Catalog", "Review")).unwrap();
        assert_eq!(r.replacement, ColRef::new("ReaderDigest", "Comments"));
        assert!(s.attr_replacement(&ColRef::new("Catalog", "Nope")).is_none());
    }

    #[test]
    fn relation_lookup() {
        let s = space();
        assert!(s.relation_replacement("Store").is_some());
        assert!(s.relation_replacement("Item").is_some());
        assert!(s.relation_replacement("Catalog").is_none());
    }

    #[test]
    fn set_lookup_requires_exact_match() {
        let s = space();
        assert!(s.replacement_for_set(&["Item".into(), "Store".into()]).is_some());
        assert!(s.replacement_for_set(&["Store".into()]).is_none());
    }

    #[test]
    fn col_mapping() {
        let s = space();
        let r = s.relation_replacement("Store").unwrap();
        assert_eq!(
            r.map_col(&ColRef::new("Item", "Book")),
            Some(ColRef::new("StoreItems", "Book"))
        );
        assert_eq!(r.map_col(&ColRef::new("Item", "Ghost")), None);
    }
}
