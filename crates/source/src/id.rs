//! Identifiers for sources and update messages.

use std::fmt;

/// Identifies one autonomous data source (one "source server" in the
/// paper's testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DS{}", self.0)
    }
}

/// Globally unique identifier of one committed source update, assigned by
/// the wrapper in commit order across the whole source space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId(pub u64);

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(SourceId(2).to_string(), "DS2");
        assert_eq!(UpdateId(7).to_string(), "u7");
    }

    #[test]
    fn ordering_follows_commit_order() {
        assert!(UpdateId(1) < UpdateId(2));
    }
}
