//! # dyno-source — autonomous data sources and wrappers
//!
//! The "remote source space" of the paper's framework (Figure 3): source
//! servers that autonomously commit data updates and schema changes, keep
//! commit logs with version history, and answer queries against their
//! **current** state; wrappers that stamp committed updates into
//! [`UpdateMessage`]s; and the EVE-style [`InfoSpace`] of replacement
//! meta-knowledge that view synchronization consults when schema elements
//! are dropped.

#![warn(missing_docs)]

pub mod id;
pub mod infospace;
pub mod message;
pub mod server;
pub mod space;
pub mod wire;

pub use id::{SourceId, UpdateId};
pub use infospace::{AttributeReplacement, InfoSpace, RelationReplacement};
pub use message::UpdateMessage;
pub use server::{LogEntry, SourceServer};
pub use space::{SourceSpace, UnionProvider};
