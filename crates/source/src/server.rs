//! An autonomous source server: a catalog plus a committed-update log with
//! version history.
//!
//! Sources commit updates without coordinating with the view manager (the
//! defining property of the loosely-coupled environment). Queries are always
//! answered against the **current** state — this is what makes concurrent
//! updates corrupt or break in-flight maintenance queries.
//!
//! The server keeps its commit log and sparse snapshots (one per schema
//! change), so any historical state can be reconstructed. The view-adaptation
//! algorithm uses this to obtain the pre-image of a replaced relation
//! (`ΔRᵢ = Rᵢⁿᵉʷ − Rᵢ` in paper Equation 6); the paper attributes this
//! capability to the "intelligent wrapper".

use dyno_relational::{Catalog, RelationalError, SourceUpdate};

use crate::id::SourceId;

/// One committed update with the version it produced.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The source-local version after applying the update (1-based).
    pub version: u64,
    /// The update applied.
    pub update: SourceUpdate,
}

/// An autonomous source server.
#[derive(Debug, Clone)]
pub struct SourceServer {
    id: SourceId,
    name: String,
    catalog: Catalog,
    version: u64,
    log: Vec<LogEntry>,
    /// Sparse snapshots `(version, catalog-at-that-version)`; always contains
    /// version 0, plus one entry per committed schema change.
    snapshots: Vec<(u64, Catalog)>,
}

impl SourceServer {
    /// Creates a server over an initial catalog (version 0).
    pub fn new(id: SourceId, name: impl Into<String>, catalog: Catalog) -> Self {
        let snapshots = vec![(0, catalog.clone())];
        SourceServer { id, name: name.into(), catalog, version: 0, log: Vec::new(), snapshots }
    }

    /// The server's id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// The server's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current catalog (what queries run against).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Declares a secondary hash index on a relation of this source; the
    /// catalog maintains it across committed updates. The index also joins
    /// the version-0 snapshot so historical reconstructions keep it.
    pub fn create_index(&mut self, relation: &str, attrs: &[&str]) -> Result<(), RelationalError> {
        self.catalog.create_index(relation, attrs)?;
        if self.version == 0 {
            self.snapshots[0].1.create_index(relation, attrs)?;
        }
        Ok(())
    }

    /// The current source-local version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The commit log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Commits an update autonomously. On success the catalog reflects the
    /// update and the new version is returned; on failure nothing changes.
    pub fn commit(&mut self, update: SourceUpdate) -> Result<u64, RelationalError> {
        self.catalog.apply_update(&update)?;
        self.version += 1;
        let is_sc = update.is_schema_change();
        self.log.push(LogEntry { version: self.version, update });
        if is_sc {
            self.snapshots.push((self.version, self.catalog.clone()));
        }
        Ok(self.version)
    }

    /// Reconstructs the catalog as of `version` by replaying the log from
    /// the nearest earlier snapshot.
    pub fn state_at(&self, version: u64) -> Result<Catalog, RelationalError> {
        if version > self.version {
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "source {} asked for future version {version} (current {})",
                    self.id, self.version
                ),
            });
        }
        let (snap_v, snap) = self
            .snapshots
            .iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .expect("snapshot at version 0 always exists");
        let mut catalog = snap.clone();
        for entry in &self.log {
            if entry.version > *snap_v && entry.version <= version {
                catalog.apply_update(&entry.update)?;
            }
        }
        Ok(catalog)
    }

    /// The updates committed after `version`, in commit order.
    pub fn updates_since(&self, version: u64) -> impl Iterator<Item = &LogEntry> {
        self.log.iter().filter(move |e| e.version > version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{
        AttrType, DataUpdate, Delta, Relation, Schema, SchemaChange, Tuple, Value,
    };

    fn server() -> SourceServer {
        let mut c = Catalog::new();
        c.add_relation(
            Relation::from_tuples(
                Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]),
                [Tuple::of([Value::from(1), Value::str("x")])],
            )
            .unwrap(),
        )
        .unwrap();
        SourceServer::new(SourceId(0), "S0", c)
    }

    fn insert(server: &mut SourceServer, a: i64, b: &str) -> u64 {
        let schema = server.catalog().get("R").unwrap().schema().clone();
        server
            .commit(SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([Value::from(a), Value::str(b)])]).unwrap(),
            )))
            .unwrap()
    }

    #[test]
    fn commit_advances_version() {
        let mut s = server();
        assert_eq!(insert(&mut s, 2, "y"), 1);
        assert_eq!(s.version(), 1);
        assert_eq!(s.catalog().get("R").unwrap().len(), 2);
    }

    #[test]
    fn failed_commit_is_clean() {
        let mut s = server();
        let err =
            s.commit(SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Ghost".into() }));
        assert!(err.is_err());
        assert_eq!(s.version(), 0);
        assert!(s.log().is_empty());
    }

    #[test]
    fn state_at_reconstructs_history() {
        let mut s = server();
        insert(&mut s, 2, "y");
        s.commit(SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        }))
        .unwrap();
        insert_narrow(&mut s, 3);

        let v0 = s.state_at(0).unwrap();
        assert_eq!(v0.get("R").unwrap().len(), 1);
        assert_eq!(v0.get("R").unwrap().schema().arity(), 2);

        let v1 = s.state_at(1).unwrap();
        assert_eq!(v1.get("R").unwrap().len(), 2);

        let v2 = s.state_at(2).unwrap();
        assert_eq!(v2.get("R").unwrap().schema().arity(), 1);
        assert_eq!(v2.get("R").unwrap().len(), 2);

        let v3 = s.state_at(3).unwrap();
        assert_eq!(v3.get("R").unwrap().len(), 3);

        assert!(s.state_at(4).is_err(), "future versions are unknowable");
    }

    fn insert_narrow(s: &mut SourceServer, a: i64) {
        let schema = s.catalog().get("R").unwrap().schema().clone();
        s.commit(SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(schema, [Tuple::of([Value::from(a)])]).unwrap(),
        )))
        .unwrap();
    }

    #[test]
    fn updates_since_filters() {
        let mut s = server();
        insert(&mut s, 2, "y");
        insert(&mut s, 3, "z");
        assert_eq!(s.updates_since(1).count(), 1);
        assert_eq!(s.updates_since(0).count(), 2);
        assert_eq!(s.updates_since(2).count(), 0);
    }
}
