//! An autonomous source server: a catalog plus a committed-update log with
//! version history.
//!
//! Sources commit updates without coordinating with the view manager (the
//! defining property of the loosely-coupled environment). Queries are always
//! answered against the **current** state — this is what makes concurrent
//! updates corrupt or break in-flight maintenance queries.
//!
//! The server keeps its commit log and sparse snapshots, so any historical
//! state can be reconstructed. The view-adaptation algorithm uses this to
//! obtain the pre-image of a replaced relation (`ΔRᵢ = Rᵢⁿᵉʷ − Rᵢ` in paper
//! Equation 6); the paper attributes this capability to the "intelligent
//! wrapper".
//!
//! Snapshots are lazy: data updates are signed deltas and therefore
//! *invertible*, so a data-only history needs no snapshot at all —
//! [`SourceServer::state_at`] rewinds from the current catalog by applying
//! negated deltas. Only a schema change is irreversible; committing one pins
//! a pre-image snapshot (and a post-image, so later versions replay forward
//! cheaply). A multi-gigabyte source that never changes schema thus carries
//! zero snapshot overhead, where an eager version-0 snapshot would double
//! its memory.

use dyno_relational::{Catalog, DataUpdate, RelationalError, SourceUpdate};

use crate::id::SourceId;

/// One committed update with the version it produced.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The source-local version after applying the update (1-based).
    pub version: u64,
    /// The update applied.
    pub update: SourceUpdate,
}

/// An autonomous source server.
#[derive(Debug, Clone)]
pub struct SourceServer {
    id: SourceId,
    name: String,
    catalog: Catalog,
    version: u64,
    log: Vec<LogEntry>,
    /// Sparse snapshots `(version, catalog-at-that-version)`, sorted by
    /// version. Empty until the first schema change commits, which pins a
    /// pre-image and a post-image pair; every later schema change adds its
    /// post-image. Versions between snapshots are reachable by replaying
    /// (or, before the first snapshot, rewinding) logged data deltas.
    snapshots: Vec<(u64, Catalog)>,
}

impl SourceServer {
    /// Creates a server over an initial catalog (version 0).
    pub fn new(id: SourceId, name: impl Into<String>, catalog: Catalog) -> Self {
        SourceServer {
            id,
            name: name.into(),
            catalog,
            version: 0,
            log: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// The server's id.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// The server's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current catalog (what queries run against).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Declares a secondary hash index on a relation of this source; the
    /// catalog maintains it across committed updates. Historical states
    /// reconstructed by rewinding from the current catalog carry the current
    /// index set (indexes speed reconstruction-time queries; they never
    /// change their results).
    pub fn create_index(&mut self, relation: &str, attrs: &[&str]) -> Result<(), RelationalError> {
        self.catalog.create_index(relation, attrs)
    }

    /// The current source-local version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The commit log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Commits an update autonomously. On success the catalog reflects the
    /// update and the new version is returned; on failure nothing changes.
    pub fn commit(&mut self, update: SourceUpdate) -> Result<u64, RelationalError> {
        let is_sc = update.is_schema_change();
        // The first schema change is the first irreversible step: pin the
        // pre-image so versions before it stay reachable (everything earlier
        // is invertible data deltas).
        let pre_image =
            if is_sc && self.snapshots.is_empty() { Some(self.catalog.clone()) } else { None };
        self.catalog.apply_update(&update)?;
        self.version += 1;
        self.log.push(LogEntry { version: self.version, update });
        if is_sc {
            if let Some(pre) = pre_image {
                self.snapshots.push((self.version - 1, pre));
            }
            self.snapshots.push((self.version, self.catalog.clone()));
        }
        Ok(self.version)
    }

    /// Reconstructs the catalog as of `version`: forward-replays the log
    /// from the nearest snapshot at or before `version`, or — when no such
    /// snapshot exists — rewinds from the nearest later state by applying
    /// logged data deltas negated. The rewind is always well-defined: the
    /// first schema change pins a pre-image snapshot, so everything before
    /// the earliest snapshot is invertible data updates. For a data-only
    /// history this reconstructs recent versions in time proportional to
    /// the rewound tail, not the whole log.
    pub fn state_at(&self, version: u64) -> Result<Catalog, RelationalError> {
        if version > self.version {
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "source {} asked for future version {version} (current {})",
                    self.id, self.version
                ),
            });
        }
        if let Some((snap_v, snap)) = self.snapshots.iter().rev().find(|(v, _)| *v <= version) {
            let mut catalog = snap.clone();
            for entry in &self.log {
                if entry.version > *snap_v && entry.version <= version {
                    catalog.apply_update(&entry.update)?;
                }
            }
            return Ok(catalog);
        }
        let (mut catalog, from) = match self.snapshots.first() {
            Some((v, snap)) => (snap.clone(), *v),
            None => (self.catalog.clone(), self.version),
        };
        for entry in self.log.iter().rev() {
            if entry.version > from || entry.version <= version {
                continue;
            }
            let SourceUpdate::Data(du) = &entry.update else {
                return Err(RelationalError::InvalidQuery {
                    reason: format!(
                        "source {}: schema change at version {} has no snapshot",
                        self.id, entry.version
                    ),
                });
            };
            let undo = SourceUpdate::Data(DataUpdate::new(du.delta.negated()));
            catalog.apply_update(&undo)?;
        }
        Ok(catalog)
    }

    /// The updates committed after `version`, in commit order.
    pub fn updates_since(&self, version: u64) -> impl Iterator<Item = &LogEntry> {
        self.log.iter().filter(move |e| e.version > version)
    }

    /// Applies a delta to the current catalog **silently**: no version bump,
    /// no log entry, no snapshot. This is the replica write-back path — a
    /// conflict-resolution winner delivered from a peer replaces local rows
    /// without looking like a fresh local commit (a version bump would make
    /// the ingress resequencer expect a committed-update message that never
    /// arrives, wedging delivery).
    ///
    /// Caveat: because the mutation is invisible to the log,
    /// [`SourceServer::state_at`] reconstructions that rewind *through* the
    /// overwrite see a shifted current state — the rewind can even fail with
    /// `DeleteMissing` when a logged insert was silently replaced. The
    /// replica path only ever overwrites rows from data updates and never
    /// runs compensation (`state_at`) against an overwritten source, so this
    /// is safe there; any other caller must accept the same trade.
    pub fn overwrite(&mut self, delta: &dyno_relational::Delta) -> Result<(), RelationalError> {
        self.catalog.apply_update(&SourceUpdate::Data(DataUpdate::new(delta.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{
        AttrType, DataUpdate, Delta, Relation, Schema, SchemaChange, Tuple, Value,
    };

    fn server() -> SourceServer {
        let mut c = Catalog::new();
        c.add_relation(
            Relation::from_tuples(
                Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]),
                [Tuple::of([Value::from(1), Value::str("x")])],
            )
            .unwrap(),
        )
        .unwrap();
        SourceServer::new(SourceId(0), "S0", c)
    }

    fn insert(server: &mut SourceServer, a: i64, b: &str) -> u64 {
        let schema = server.catalog().get("R").unwrap().schema().clone();
        server
            .commit(SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([Value::from(a), Value::str(b)])]).unwrap(),
            )))
            .unwrap()
    }

    #[test]
    fn commit_advances_version() {
        let mut s = server();
        assert_eq!(insert(&mut s, 2, "y"), 1);
        assert_eq!(s.version(), 1);
        assert_eq!(s.catalog().get("R").unwrap().len(), 2);
    }

    #[test]
    fn failed_commit_is_clean() {
        let mut s = server();
        let err =
            s.commit(SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Ghost".into() }));
        assert!(err.is_err());
        assert_eq!(s.version(), 0);
        assert!(s.log().is_empty());
    }

    #[test]
    fn state_at_reconstructs_history() {
        let mut s = server();
        insert(&mut s, 2, "y");
        s.commit(SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        }))
        .unwrap();
        insert_narrow(&mut s, 3);

        let v0 = s.state_at(0).unwrap();
        assert_eq!(v0.get("R").unwrap().len(), 1);
        assert_eq!(v0.get("R").unwrap().schema().arity(), 2);

        let v1 = s.state_at(1).unwrap();
        assert_eq!(v1.get("R").unwrap().len(), 2);

        let v2 = s.state_at(2).unwrap();
        assert_eq!(v2.get("R").unwrap().schema().arity(), 1);
        assert_eq!(v2.get("R").unwrap().len(), 2);

        let v3 = s.state_at(3).unwrap();
        assert_eq!(v3.get("R").unwrap().len(), 3);

        assert!(s.state_at(4).is_err(), "future versions are unknowable");
    }

    fn insert_narrow(s: &mut SourceServer, a: i64) {
        let schema = s.catalog().get("R").unwrap().schema().clone();
        s.commit(SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(schema, [Tuple::of([Value::from(a)])]).unwrap(),
        )))
        .unwrap();
    }

    #[test]
    fn data_only_history_needs_no_snapshot() {
        let mut s = server();
        insert(&mut s, 2, "y");
        insert(&mut s, 3, "z");
        assert!(s.snapshots.is_empty(), "data updates are invertible; nothing to pin");
        assert_eq!(s.state_at(0).unwrap().get("R").unwrap().len(), 1);
        assert_eq!(s.state_at(1).unwrap().get("R").unwrap().len(), 2);
        assert_eq!(s.state_at(2).unwrap().get("R").unwrap().len(), 3);
    }

    #[test]
    fn rewind_reinserts_deleted_rows() {
        let mut s = server();
        let schema = s.catalog().get("R").unwrap().schema().clone();
        s.commit(SourceUpdate::Data(DataUpdate::new(
            Delta::deletes(schema, [Tuple::of([Value::from(1), Value::str("x")])]).unwrap(),
        )))
        .unwrap();
        assert_eq!(s.catalog().get("R").unwrap().len(), 0);
        assert_eq!(s.state_at(0).unwrap().get("R").unwrap().len(), 1);
    }

    #[test]
    fn first_schema_change_pins_pre_and_post_images() {
        let mut s = server();
        insert(&mut s, 2, "y");
        s.commit(SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        }))
        .unwrap();
        let versions: Vec<u64> = s.snapshots.iter().map(|(v, _)| *v).collect();
        assert_eq!(versions, vec![1, 2], "pre-image at SC-1, post-image at SC");
    }

    #[test]
    fn rewound_state_carries_current_indexes() {
        let mut s = server();
        s.create_index("R", &["a"]).unwrap();
        insert(&mut s, 2, "y");
        let v0 = s.state_at(0).unwrap();
        assert!(v0.index_covering("R", &["a"]).is_some());
        assert_eq!(v0.index_covering("R", &["a"]).unwrap().len(), 1);
    }

    #[test]
    fn overwrite_mutates_without_version_or_log() {
        let mut s = server();
        insert(&mut s, 2, "y");
        let schema = s.catalog().get("R").unwrap().schema().clone();
        let mut d =
            Delta::deletes(schema.clone(), [Tuple::of([Value::from(2), Value::str("y")])]).unwrap();
        d.merge(
            &Delta::inserts(schema, [Tuple::of([Value::from(2), Value::str("peer")])]).unwrap(),
        )
        .unwrap();
        s.overwrite(&d).unwrap();
        assert_eq!(s.version(), 1, "no version bump");
        assert_eq!(s.log().len(), 1, "no log entry");
        let rel = s.catalog().get("R").unwrap();
        let peer_row = Tuple::of([Value::from(2), Value::str("peer")]);
        assert!(rel.rows().iter().any(|(t, w)| t == &peer_row && w == 1));
        // Documented caveat: rewinding through the silent overwrite fails —
        // the logged insert of (2, 'y') can no longer be undone.
        assert!(s.state_at(0).is_err(), "history through an overwrite is gone");
    }

    #[test]
    fn updates_since_filters() {
        let mut s = server();
        insert(&mut s, 2, "y");
        insert(&mut s, 3, "z");
        assert_eq!(s.updates_since(1).count(), 1);
        assert_eq!(s.updates_since(0).count(), 2);
        assert_eq!(s.updates_since(2).count(), 0);
    }
}
