//! Binary (de)serialization of source-layer messages for the warehouse WAL.

use crate::id::{SourceId, UpdateId};
use crate::message::UpdateMessage;
use dyno_durable::codec::{Dec, Enc, WireError};
use dyno_relational::wire::{dec_source_update, enc_source_update};

/// Encode an [`UpdateMessage`] (id, source, version, payload).
pub fn enc_message(e: &mut Enc, m: &UpdateMessage) {
    e.u64(m.id.0);
    e.u32(m.source.0);
    e.u64(m.source_version);
    enc_source_update(e, &m.update);
}

/// Decode an [`UpdateMessage`].
pub fn dec_message(d: &mut Dec<'_>) -> Result<UpdateMessage, WireError> {
    Ok(UpdateMessage {
        id: UpdateId(d.u64()?),
        source: SourceId(d.u32()?),
        source_version: d.u64()?,
        update: dec_source_update(d)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{DataUpdate, Delta, Schema, SourceUpdate, Tuple, Value};

    #[test]
    fn message_round_trips() {
        let schema = Schema::of("item", &[("k", dyno_relational::AttrType::Int)]);
        let delta = Delta::from_rows(schema, vec![(Tuple::new(vec![Value::Int(5)]), 1)]).unwrap();
        let m = UpdateMessage {
            id: UpdateId(42),
            source: SourceId(3),
            source_version: 17,
            update: SourceUpdate::Data(DataUpdate::new(delta)),
        };
        let mut e = Enc::new();
        enc_message(&mut e, &m);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(dec_message(&mut d).unwrap(), m);
        assert!(d.is_done());
    }
}
