//! Peer replication for warehouses (DESIGN.md §17): N replicas maintain the
//! same view set, exchange committed extent changes as stamped per-key
//! post-images over a fault-injected peer network, detect causally
//! concurrent remote writes as the cross-replica dependency class
//! (`DepKind::Replica`, "rd"), and resolve them deterministically by
//! hybrid-logical-clock last-writer-wins — so every replica converges to
//! bit-identical extents once partitions heal.
//!
//! * [`wire`] — the [`PeerDelta`](wire::PeerDelta) message, conflict-register
//!   [`Stamp`](wire::Stamp)s, and the durable record bodies.
//! * [`engine`] — the per-replica [`ReplicaEngine`](engine::ReplicaEngine):
//!   publish (log-then-send), receive/resolve, kill recovery.

pub mod engine;
pub mod wire;

pub use engine::{msg_lineage_id, Outgoing, RemoteApply, ReplicaEngine, REPL_BIT};
pub use wire::{PeerDelta, PublishedRecord, RemoteMeta, Stamp};
