//! Wire format of the peer-replication protocol: the [`PeerDelta`] message
//! replicas exchange, the [`Stamp`] a conflict register remembers about the
//! last winning writer, and the encoded forms the engine persists through
//! the warehouse WAL (`Published` bodies, `Remote` metadata, and the
//! engine's checkpoint snapshot).
//!
//! Everything rides the workspace codec ([`Enc`]/[`Dec`]) plus the
//! relational value encoders, so peer messages share byte-level conventions
//! with the WAL and the wrapper transport.

use dyno_durable::codec::{dec_seq, enc_seq, Dec, Enc, WireError};
use dyno_relational::wire::{dec_bag, dec_value, enc_bag, enc_value};
use dyno_relational::{SignedBag, Value};

/// The causal identity of a register's last winning write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    /// The writer's hybrid-logical-clock timestamp (total order;
    /// last-writer-wins tiebreaker).
    pub hlc: u64,
    /// The writing replica (breaks exact HLC ties deterministically).
    pub origin: u16,
    /// The writer's vector clock at publish time (causal order).
    pub vc: Vec<u64>,
}

impl Stamp {
    /// Orders two stamps for last-writer-wins: HLC first, origin breaks
    /// exact ties. Total and antisymmetric for distinct `(hlc, origin)`.
    pub fn wins_over(&self, other: &Stamp) -> bool {
        (self.hlc, self.origin) > (other.hlc, other.origin)
    }
}

/// One replicated view change: the full post-image of `key`'s rows in
/// `view`, stamped with the publisher's causal clocks. Post-image (not
/// delta) replication is what makes conflict resolution a per-key
/// last-writer-wins register: applying the winner *replaces* the key's rows,
/// so losers leave no residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerDelta {
    /// Publishing replica.
    pub origin: u16,
    /// Per-link sequence number (contiguous per `origin → receiver` link;
    /// the receiver's reorder buffer releases in order and NACKs gaps).
    pub seq: u64,
    /// Target view slot (replicas register identical view sets).
    pub view: u32,
    /// Column of the view's key attribute.
    pub key_col: u32,
    /// The key whose rows this message replaces.
    pub key: Value,
    /// The key's complete new rows (empty = the key vanished).
    pub post: SignedBag,
    /// Publisher HLC at publish.
    pub hlc: u64,
    /// Publisher vector clock at publish.
    pub vc: Vec<u64>,
    /// Causal ids of the source updates folded into this post-image
    /// (lineage: `repl.send` → `repl.recv` → `repl.apply`/`superseded`).
    pub ids: Vec<u64>,
}

impl PeerDelta {
    /// The message's causal stamp.
    pub fn stamp(&self) -> Stamp {
        Stamp { hlc: self.hlc, origin: self.origin, vc: self.vc.clone() }
    }
}

/// Encodes a stamp.
pub fn enc_stamp(e: &mut Enc, s: &Stamp) {
    e.u64(s.hlc);
    e.u32(s.origin as u32);
    enc_seq(e, &s.vc, |e, &c| e.u64(c));
}

/// Decodes a stamp.
pub fn dec_stamp(d: &mut Dec<'_>) -> Result<Stamp, WireError> {
    let hlc = d.u64()?;
    let origin = d.u32()? as u16;
    let vc = dec_seq(d, |d| d.u64())?;
    Ok(Stamp { hlc, origin, vc })
}

/// Encodes one peer message body.
pub fn enc_peer_delta(e: &mut Enc, m: &PeerDelta) {
    e.u32(m.origin as u32);
    e.u64(m.seq);
    e.u32(m.view);
    e.u32(m.key_col);
    enc_value(e, &m.key);
    enc_bag(e, &m.post);
    e.u64(m.hlc);
    enc_seq(e, &m.vc, |e, &c| e.u64(c));
    enc_seq(e, &m.ids, |e, &id| e.u64(id));
}

/// Decodes one peer message body.
pub fn dec_peer_delta(d: &mut Dec<'_>) -> Result<PeerDelta, WireError> {
    Ok(PeerDelta {
        origin: d.u32()? as u16,
        seq: d.u64()?,
        view: d.u32()?,
        key_col: d.u32()?,
        key: dec_value(d)?,
        post: dec_bag(d)?,
        hlc: d.u64()?,
        vc: dec_seq(d, |d| d.u64())?,
        ids: dec_seq(d, |d| d.u64())?,
    })
}

/// Encodes a standalone message (its own length-delimited buffer).
pub fn enc_msg(m: &PeerDelta) -> Vec<u8> {
    let mut e = Enc::new();
    enc_peer_delta(&mut e, m);
    e.finish()
}

/// Decodes a standalone message.
pub fn dec_msg(bytes: &[u8]) -> Result<PeerDelta, WireError> {
    let mut d = Dec::new(bytes);
    dec_peer_delta(&mut d)
}

/// The durable body of one `Published` WAL record: the committed batch's
/// causal keys plus every peer copy `(peer, message)` the engine is about
/// to hand to the network. Logged **before** the send, so a crash between
/// the log write and the send re-sends these exact bytes instead of
/// reusing sequence numbers for different content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishedRecord {
    /// Causal ids of the published commit (pairs with the preceding
    /// `Applied` record during recovery).
    pub keys: Vec<u64>,
    /// Every outgoing copy: receiving peer and the full message.
    pub msgs: Vec<(u16, PeerDelta)>,
}

/// Encodes a `Published` record body.
pub fn enc_published(r: &PublishedRecord) -> Vec<u8> {
    let mut e = Enc::new();
    enc_seq(&mut e, &r.keys, |e, &k| e.u64(k));
    enc_seq(&mut e, &r.msgs, |e, (peer, m)| {
        e.u32(*peer as u32);
        enc_peer_delta(e, m);
    });
    e.finish()
}

/// Decodes a `Published` record body.
pub fn dec_published(bytes: &[u8]) -> Result<PublishedRecord, WireError> {
    let mut d = Dec::new(bytes);
    let keys = dec_seq(&mut d, |d| d.u64())?;
    let msgs = dec_seq(&mut d, |d| {
        let peer = d.u32()? as u16;
        let m = dec_peer_delta(d)?;
        Ok((peer, m))
    })?;
    Ok(PublishedRecord { keys, msgs })
}

/// The durable metadata of one `Remote` WAL record: where the resolved
/// message came from (so delivery floors recover) and the stamp that won or
/// lost (so conflict registers recover).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteMeta {
    /// Publishing replica.
    pub origin: u16,
    /// Per-link sequence of the resolved message.
    pub seq: u64,
    /// The message's stamp (the new register value when applied).
    pub stamp: Stamp,
}

/// Encodes a `Remote` record's metadata.
pub fn enc_remote_meta(m: &RemoteMeta) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(m.origin as u32);
    e.u64(m.seq);
    enc_stamp(&mut e, &m.stamp);
    e.finish()
}

/// Decodes a `Remote` record's metadata.
pub fn dec_remote_meta(bytes: &[u8]) -> Result<RemoteMeta, WireError> {
    let mut d = Dec::new(bytes);
    let origin = d.u32()? as u16;
    let seq = d.u64()?;
    let stamp = dec_stamp(&mut d)?;
    Ok(RemoteMeta { origin, seq, stamp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::Tuple;

    fn sample_msg() -> PeerDelta {
        let mut post = SignedBag::new();
        post.add(Tuple::of([Value::from(7i64), Value::str("x")]), 1);
        PeerDelta {
            origin: 2,
            seq: 41,
            view: 1,
            key_col: 0,
            key: Value::from(7i64),
            post,
            hlc: 9_000_123,
            vc: vec![3, 0, 5],
            ids: vec![17, 18],
        }
    }

    #[test]
    fn peer_delta_roundtrips() {
        let m = sample_msg();
        assert_eq!(dec_msg(&enc_msg(&m)).unwrap(), m);
    }

    #[test]
    fn published_record_roundtrips() {
        let r = PublishedRecord {
            keys: vec![17, 18],
            msgs: vec![(0, sample_msg()), (1, sample_msg())],
        };
        assert_eq!(dec_published(&enc_published(&r)).unwrap(), r);
    }

    #[test]
    fn remote_meta_roundtrips() {
        let m =
            RemoteMeta { origin: 1, seq: 6, stamp: Stamp { hlc: 55, origin: 1, vc: vec![0, 6] } };
        assert_eq!(dec_remote_meta(&enc_remote_meta(&m)).unwrap(), m);
    }

    #[test]
    fn wins_over_is_total_on_distinct_writers() {
        let a = Stamp { hlc: 10, origin: 0, vc: vec![] };
        let b = Stamp { hlc: 10, origin: 1, vc: vec![] };
        assert!(b.wins_over(&a) && !a.wins_over(&b), "origin breaks exact HLC ties");
        let c = Stamp { hlc: 11, origin: 0, vc: vec![] };
        assert!(c.wins_over(&b), "a later HLC beats a higher origin");
    }
}
