//! The per-replica replication engine: publishes committed view changes to
//! peers, resolves incoming peer deltas against causal conflict registers,
//! and survives kills through the warehouse WAL.
//!
//! ## Conflict model
//!
//! Each replica keeps one **register** per `(view, key)`: the [`Stamp`] of
//! the last write that won there. An incoming [`PeerDelta`] compares its
//! vector clock against the register's:
//!
//! * register absent, or message **dominates** → causally ordered; apply.
//! * message **dominated** (or equal) → stale; discard as superseded.
//! * **incomparable** → the cross-replica dependency class
//!   ([`DepKind::Replica`], "rd"): neither writer saw the other. The HLC
//!   resolves it — higher `(hlc, origin)` wins deterministically; the loser
//!   is logged to lineage as `superseded` and leaves no residue (post-image
//!   replication replaces the key's rows wholesale).
//!
//! ## Durability protocol
//!
//! Publish order is **log, then send**: the `Published` WAL record (full
//! message bodies) lands before any message reaches the network, so a crash
//! between the two re-sends those exact bytes instead of reusing sequence
//! numbers for different content. Resolved remote deltas land as `Remote`
//! records (post-image plus [`RemoteMeta`]) whose replay restores registers
//! and delivery floors; the warehouse replays applied post-images into the
//! extent exactly once. [`ReplicaEngine::recover`] folds the checkpoint
//! snapshot plus the WAL tail, re-publishes commits whose `Applied` record
//! has no paired `Published`, and re-queues every unacked outbox message.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::HashMap;

use dyno_core::clock::{CausalOrder, Hlc, VectorClock};
use dyno_core::DepKind;
use dyno_durable::codec::{dec_seq, enc_seq, Dec, Enc, WireError};
use dyno_fault::Sequencer;
use dyno_obs::trace::field;
use dyno_obs::{stage, Collector, Counter, Gauge, Histogram};
use dyno_relational::{SignedBag, Value};
use dyno_view::wal::ReplicaTailEvent;
use dyno_view::{PendingPublish, ViewError, Warehouse};

use crate::wire::{
    dec_msg, dec_published, dec_remote_meta, dec_stamp, enc_msg, enc_published, enc_remote_meta,
    enc_stamp, PeerDelta, PublishedRecord, RemoteMeta, Stamp,
};

/// Bit marking a synthetic peer-message lineage id; disjoint from both real
/// causal ids (small integers) and batch ids (`1 << 63`).
pub const REPL_BIT: u64 = 1 << 62;

/// The synthetic lineage id of message `seq` from `origin`.
pub fn msg_lineage_id(origin: u16, seq: u64) -> u64 {
    REPL_BIT | ((origin as u64) << 48) | (seq & 0xFFFF_FFFF_FFFF)
}

/// Static gauge names for per-peer replication lag (gauge names must be
/// `'static`; eight peers is far beyond the tested replica counts).
const LAG_GAUGES: [&str; 8] = [
    "replica.lag_us.r0",
    "replica.lag_us.r1",
    "replica.lag_us.r2",
    "replica.lag_us.r3",
    "replica.lag_us.r4",
    "replica.lag_us.r5",
    "replica.lag_us.r6",
    "replica.lag_us.r7",
];

/// One message queued for the network: `(receiving peer, link seq, body)`.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Receiving replica.
    pub to: u16,
    /// Per-link sequence number.
    pub seq: u64,
    /// Encoded [`PeerDelta`].
    pub bytes: Vec<u8>,
}

/// One remote post-image the engine applied to the local extent; the caller
/// mirrors it into the local source tables (write-back), so later local
/// commits build on the resolved state.
#[derive(Debug, Clone)]
pub struct RemoteApply {
    /// View slot the post-image landed in.
    pub view: usize,
    /// Key column of that view.
    pub key_col: usize,
    /// The replaced key.
    pub key: Value,
    /// The key's new rows (empty = the key vanished).
    pub post: SignedBag,
}

/// The per-replica replication engine (one per [`Warehouse`] peer).
#[derive(Debug)]
pub struct ReplicaEngine {
    id: u16,
    n: usize,
    key_cols: Vec<usize>,
    hlc: Hlc,
    vc: VectorClock,
    registers: BTreeMap<(u32, Value), Stamp>,
    /// Next sequence number per outgoing link (1-based; index = peer id).
    next_seq: Vec<u64>,
    /// Unacked sent messages per link, for re-send after a kill or NACK.
    outbox: Vec<BTreeMap<u64, PeerDelta>>,
    /// Per-origin reorder buffer; releases contiguous runs, reports gaps.
    inbox: Sequencer<PeerDelta>,
    obs: Collector,
    published: Counter,
    remote_applied: Counter,
    superseded: Counter,
    conflicts: Counter,
    duplicates: Counter,
    lag: Vec<Gauge>,
    /// Apply-side lag distribution across all origins (`replica.lag_us`):
    /// the histogram behind `monitor`'s lag lane and the live p50/p95/p99
    /// in `forensics --replica`.
    lag_hist: Histogram,
}

impl ReplicaEngine {
    /// A fresh engine for replica `id` of `n`, over views whose key columns
    /// are `key_cols` (slot order). Binds the `replica.*` counters.
    pub fn new(id: u16, n: usize, key_cols: Vec<usize>, obs: Collector) -> Self {
        assert!((id as usize) < n, "replica id out of range");
        assert!(n <= LAG_GAUGES.len(), "at most {} replicas", LAG_GAUGES.len());
        let lag = (0..n).map(|i| obs.gauge(LAG_GAUGES[i])).collect();
        ReplicaEngine {
            id,
            n,
            key_cols,
            hlc: Hlc::new(),
            vc: VectorClock::new(n),
            registers: BTreeMap::new(),
            next_seq: vec![1; n],
            outbox: (0..n).map(|_| BTreeMap::new()).collect(),
            inbox: Sequencer::new(HashMap::new()),
            published: obs.counter("replica.published"),
            remote_applied: obs.counter("replica.remote_applied"),
            superseded: obs.counter("replica.superseded"),
            conflicts: obs.counter("replica.conflicts"),
            duplicates: obs.counter("replica.duplicates"),
            lag,
            lag_hist: obs.histogram("replica.lag_us"),
            obs,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The replica-set size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The conflict-register count (distinct `(view, key)` pairs written).
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The delivery floor for messages from `origin` (contiguously resolved).
    pub fn delivered(&self, origin: u16) -> u64 {
        self.inbox.delivered(origin as u32)
    }

    /// Streams with buffered-but-gapped deliveries, as `(origin, floor)` —
    /// NACK the origin for everything after `floor`.
    pub fn gaps(&self) -> Vec<(u16, u64)> {
        self.inbox.gaps().into_iter().map(|(s, f)| (s as u16, f)).collect()
    }

    /// Peer `peer` has durably resolved everything up to `seq`; drop those
    /// outbox copies. Acks are volatile — a crashed receiver re-dedupes
    /// re-sent copies via its recovered floor.
    pub fn acked(&mut self, peer: u16, seq: u64) {
        let ob = &mut self.outbox[peer as usize];
        *ob = ob.split_off(&(seq + 1));
    }

    /// Every unacked outbox message (kill recovery re-sends all of these).
    pub fn unacked(&self) -> Vec<Outgoing> {
        let mut out = Vec::new();
        for (peer, ob) in self.outbox.iter().enumerate() {
            for (&seq, m) in ob {
                out.push(Outgoing { to: peer as u16, seq, bytes: enc_msg(m) });
            }
        }
        out
    }

    /// Publishes every commit the warehouse has queued: derives per-key
    /// post-images from the committed extents, stamps them (HLC tick +
    /// vector-clock bump per commit), writes the durable `Published` record,
    /// refreshes the engine snapshot, and returns the copies to hand to the
    /// network. **Log-then-send**: callers must not reorder the returned
    /// sends before this call's WAL writes (the method itself guarantees
    /// the order; a crash after it re-sends from the outbox).
    pub fn publish(&mut self, wh: &mut Warehouse, now_us: u64) -> Result<Vec<Outgoing>, ViewError> {
        let mut out = Vec::new();
        for batch in wh.take_published() {
            out.extend(self.publish_batch(wh, &batch, now_us));
        }
        wh.set_replica_ext(self.encode_ext());
        wh.maybe_checkpoint();
        Ok(out)
    }

    fn publish_batch(
        &mut self,
        wh: &mut Warehouse,
        batch: &PendingPublish,
        now_us: u64,
    ) -> Vec<Outgoing> {
        // One causal event per commit: every key post-image in the batch
        // shares the stamp, so a multi-view commit replicates atomically
        // per key yet carries one vector-clock step.
        self.vc.bump(self.id as usize);
        let hlc = self.hlc.tick(now_us);
        let vc = self.vc.counters().to_vec();

        let mut bodies = Vec::new();
        for (view, rows) in batch.rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let key_col = self.key_cols[view];
            let keys: BTreeSet<Value> = rows.iter().map(|(t, _)| t.get(key_col).clone()).collect();
            for key in keys {
                let mut post = SignedBag::new();
                for (t, w) in wh.mv(view).extent().iter() {
                    if t.get(key_col) == &key {
                        post.add(t.clone(), w);
                    }
                }
                self.registers.insert(
                    (view as u32, key.clone()),
                    Stamp { hlc, origin: self.id, vc: vc.clone() },
                );
                bodies.push(PeerDelta {
                    origin: self.id,
                    seq: 0,
                    view: view as u32,
                    key_col: key_col as u32,
                    key,
                    post,
                    hlc,
                    vc: vc.clone(),
                    ids: batch.keys.clone(),
                });
            }
        }

        let mut record = PublishedRecord { keys: batch.keys.clone(), msgs: Vec::new() };
        let mut out = Vec::new();
        for peer in 0..self.n as u16 {
            if peer == self.id {
                continue;
            }
            for body in &bodies {
                let seq = self.next_seq[peer as usize];
                self.next_seq[peer as usize] += 1;
                let msg = PeerDelta { seq, ..body.clone() };
                self.obs.prov(
                    msg_lineage_id(self.id, seq),
                    stage::REPL_SEND,
                    &[
                        field("peer", peer as u64),
                        field("seq", seq),
                        field("view", msg.view as u64),
                    ],
                );
                self.outbox[peer as usize].insert(seq, msg.clone());
                out.push(Outgoing { to: peer, seq, bytes: enc_msg(&msg) });
                record.msgs.push((peer, msg));
            }
        }
        self.published.add(bodies.len() as u64);
        if !record.msgs.is_empty() || !record.keys.is_empty() {
            wh.log_replica_published(&enc_published(&record));
        }
        out
    }

    /// Offers one network delivery to the reorder buffer and resolves every
    /// message that became contiguously deliverable. Returns the applied
    /// post-images for source write-back.
    pub fn on_delivery(
        &mut self,
        wh: &mut Warehouse,
        bytes: &[u8],
        now_us: u64,
    ) -> Result<Vec<RemoteApply>, ViewError> {
        let msg = dec_msg(bytes).map_err(|e| {
            ViewError::Internal(dyno_relational::RelationalError::InvalidQuery {
                reason: format!("undecodable peer delta: {e}"),
            })
        })?;
        let offer = self.inbox.offer(msg.origin as u32, msg.seq, msg);
        if offer.duplicate {
            self.duplicates.inc();
        }
        let mut ready = Vec::new();
        self.inbox.pop_ready(&mut ready);
        let mut applied = Vec::new();
        for m in ready {
            if let Some(a) = self.resolve(wh, m, now_us)? {
                applied.push(a);
            }
        }
        wh.set_replica_ext(self.encode_ext());
        wh.maybe_checkpoint();
        Ok(applied)
    }

    /// Resolves one causally-released message against its register.
    fn resolve(
        &mut self,
        wh: &mut Warehouse,
        msg: PeerDelta,
        now_us: u64,
    ) -> Result<Option<RemoteApply>, ViewError> {
        let mid = msg_lineage_id(msg.origin, msg.seq);
        self.obs.prov(
            mid,
            stage::REPL_RECV,
            &[
                field("origin", msg.origin as u64),
                field("seq", msg.seq),
                field("view", msg.view as u64),
            ],
        );
        let lag_us = now_us.saturating_sub(Hlc::unpack(msg.hlc).0);
        self.lag[msg.origin as usize].set(lag_us as i64);
        self.lag_hist.record(lag_us);

        let slot = (msg.view, msg.key.clone());
        let stamp = msg.stamp();
        let apply = match self.registers.get(&slot) {
            None => true,
            Some(reg) => match VectorClock::restore(reg.vc.clone()).compare(&msg.vc) {
                CausalOrder::Before => true,
                CausalOrder::After | CausalOrder::Equal => false,
                CausalOrder::Concurrent => {
                    // The cross-replica dependency: neither writer observed
                    // the other. Deterministic last-writer-wins by HLC.
                    self.conflicts.inc();
                    self.obs.prov(
                        mid,
                        stage::CONFLICT,
                        &[
                            field("with", reg.origin as u64),
                            field("class", 5u64),
                            field("kind", DepKind::Replica.to_string()),
                        ],
                    );
                    stamp.wins_over(reg)
                }
            },
        };

        let meta =
            enc_remote_meta(&RemoteMeta { origin: msg.origin, seq: msg.seq, stamp: stamp.clone() });
        let key_col = msg.key_col as usize;
        wh.apply_remote(msg.view as usize, key_col, &msg.key, &msg.post, apply, &meta)?;
        self.vc.merge(&msg.vc);
        self.hlc.observe(msg.hlc, now_us);

        if apply {
            self.registers.insert(slot, stamp);
            self.remote_applied.inc();
            self.obs.prov(
                mid,
                stage::REPL_APPLY,
                &[field("origin", msg.origin as u64), field("lag_us", lag_us)],
            );
            Ok(Some(RemoteApply { view: msg.view as usize, key_col, key: msg.key, post: msg.post }))
        } else {
            self.superseded.inc();
            self.obs.prov(
                mid,
                stage::SUPERSEDED,
                &[field("origin", msg.origin as u64), field("kind", DepKind::Replica.to_string())],
            );
            Ok(None)
        }
    }

    /// Serializes the engine for the warehouse checkpoint (see
    /// [`Warehouse::set_replica_ext`]).
    pub fn encode_ext(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.hlc.last());
        enc_seq(&mut e, self.vc.counters(), |e, &c| e.u64(c));
        enc_seq(&mut e, &self.next_seq, |e, &s| e.u64(s));
        let floors: Vec<u64> = (0..self.n).map(|i| self.inbox.delivered(i as u32)).collect();
        enc_seq(&mut e, &floors, |e, &f| e.u64(f));
        let regs: Vec<(&(u32, Value), &Stamp)> = self.registers.iter().collect();
        enc_seq(&mut e, &regs, |e, ((view, key), stamp)| {
            e.u32(*view);
            dyno_relational::wire::enc_value(e, key);
            enc_stamp(e, stamp);
        });
        let ob: Vec<(u64, &PeerDelta)> = self
            .outbox
            .iter()
            .enumerate()
            .flat_map(|(peer, m)| m.values().map(move |d| (peer as u64, d)))
            .collect();
        enc_seq(&mut e, &ob, |e, (peer, m)| {
            e.u64(*peer);
            crate::wire::enc_peer_delta(e, m);
        });
        e.finish()
    }

    fn decode_ext(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut d = Dec::new(bytes);
        self.hlc = Hlc::restore(d.u64()?);
        self.vc = VectorClock::restore(dec_seq(&mut d, |d| d.u64())?);
        self.next_seq = dec_seq(&mut d, |d| d.u64())?;
        let floors = dec_seq(&mut d, |d| d.u64())?;
        for (i, f) in floors.iter().enumerate() {
            self.inbox.set_floor(i as u32, *f);
        }
        let regs = dec_seq(&mut d, |d| {
            let view = d.u32()?;
            let key = dyno_relational::wire::dec_value(d)?;
            let stamp = dec_stamp(d)?;
            Ok(((view, key), stamp))
        })?;
        self.registers = regs.into_iter().collect();
        let ob: Vec<(u64, PeerDelta)> = dec_seq(&mut d, |d| {
            let peer = d.u64()?;
            let m = crate::wire::dec_peer_delta(d)?;
            Ok((peer, m))
        })?;
        for (peer, m) in ob {
            self.outbox[peer as usize].insert(m.seq, m);
        }
        Ok(())
    }

    /// Rebuilds an engine after a kill: folds the checkpoint snapshot
    /// (`ext`) and the WAL tail the warehouse replayed, **re-publishes**
    /// any commit whose `Applied` record has no paired `Published` (the
    /// crash hit between commit and publish; fresh stamps, fresh seqs),
    /// and refreshes the engine snapshot so the recovery checkpoint is
    /// complete. The caller must then re-send [`ReplicaEngine::unacked`].
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        id: u16,
        n: usize,
        key_cols: Vec<usize>,
        obs: Collector,
        ext: &[u8],
        tail: Vec<ReplicaTailEvent>,
        wh: &mut Warehouse,
        now_us: u64,
    ) -> Result<Self, ViewError> {
        let mut eng = ReplicaEngine::new(id, n, key_cols, obs);
        if !ext.is_empty() {
            eng.decode_ext(ext).map_err(|e| {
                ViewError::Internal(dyno_relational::RelationalError::InvalidQuery {
                    reason: format!("corrupt replica snapshot: {e}"),
                })
            })?;
        }
        let corrupt = |what: &str, e: WireError| {
            ViewError::Internal(dyno_relational::RelationalError::InvalidQuery {
                reason: format!("corrupt replica {what}: {e}"),
            })
        };
        // Commits whose publish may not have made the log yet, in order.
        let mut pending: Vec<PendingPublish> = Vec::new();
        for ev in tail {
            match ev {
                ReplicaTailEvent::Applied { keys, rows } => {
                    pending.push(PendingPublish { keys, rows });
                }
                ReplicaTailEvent::Published { bytes } => {
                    let rec = dec_published(&bytes).map_err(|e| corrupt("publish record", e))?;
                    pending.retain(|p| p.keys != rec.keys);
                    for (peer, m) in rec.msgs {
                        eng.next_seq[peer as usize] = eng.next_seq[peer as usize].max(m.seq + 1);
                        eng.registers.insert((m.view, m.key.clone()), m.stamp());
                        eng.vc.merge(&m.vc);
                        eng.hlc.observe(m.hlc, now_us);
                        eng.outbox[peer as usize].insert(m.seq, m);
                    }
                }
                ReplicaTailEvent::Remote { view, key, bytes, applied, .. } => {
                    let meta = dec_remote_meta(&bytes).map_err(|e| corrupt("remote meta", e))?;
                    eng.inbox.set_floor(meta.origin as u32, meta.seq);
                    if applied {
                        eng.vc.merge(&meta.stamp.vc);
                        eng.hlc.observe(meta.stamp.hlc, now_us);
                        eng.registers.insert((view, key), meta.stamp);
                    }
                }
            }
        }
        for batch in pending {
            // Returned copies are already queued in the outbox; the caller's
            // unacked() re-send covers them.
            let _ = eng.publish_batch(wh, &batch, now_us);
        }
        wh.set_replica_ext(eng.encode_ext());
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_core::Strategy;
    use dyno_durable::MemStorage;
    use dyno_relational::{AttrType, Catalog, Relation, Schema, SourceUpdate, SpjQuery, Tuple};
    use dyno_source::{SourceId, SourceServer, SourceSpace};
    use dyno_view::engine::InProcessPort;
    use dyno_view::wal::DurableLog;
    use dyno_view::ViewDefinition;

    fn space() -> SourceSpace {
        let mut c = Catalog::new();
        c.add_relation(
            Relation::from_tuples(
                Schema::of("R", &[("K", AttrType::Int), ("V", AttrType::Int)]),
                [Tuple::of([Value::from(1), Value::from(10)])],
            )
            .unwrap(),
        )
        .unwrap();
        let mut sp = SourceSpace::new();
        sp.add_server(SourceServer::new(SourceId(0), "s0", c));
        sp
    }

    fn view() -> ViewDefinition {
        let mut b = SpjQuery::over(["R".to_string()]);
        b = b.select_as("R", "K", "R_K").select_as("R", "V", "R_V");
        ViewDefinition::new("V", b.build())
    }

    fn replica(id: u16) -> (Warehouse, InProcessPort, MemStorage, ReplicaEngine, Collector) {
        let sp = space();
        let info = sp.info().clone();
        let mut port = InProcessPort::new(sp);
        let disk = MemStorage::new();
        let obs = Collector::wall();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic).with_obs(obs.clone());
        wh.add_view(view());
        wh.initialize(&mut port).unwrap();
        let log = DurableLog::create(Box::new(disk.clone())).unwrap();
        let mut wh = wh.with_wal(log).expect("no admission bound");
        wh.enable_replication();
        let eng = ReplicaEngine::new(id, 2, vec![0], obs.clone());
        (wh, port, disk, eng, obs)
    }

    fn commit_v(port: &mut InProcessPort, wh: &mut Warehouse, k: i64, old: i64, new: i64) {
        let schema = port.space().server(SourceId(0)).catalog().get("R").unwrap().schema().clone();
        let mut d = dyno_relational::Delta::deletes(
            schema.clone(),
            [Tuple::of([Value::from(k), Value::from(old)])],
        )
        .unwrap();
        d.merge(
            &dyno_relational::Delta::inserts(
                schema,
                [Tuple::of([Value::from(k), Value::from(new)])],
            )
            .unwrap(),
        )
        .unwrap();
        port.commit(SourceId(0), SourceUpdate::Data(dyno_relational::DataUpdate::new(d))).unwrap();
        wh.run_to_quiescence(port, 100).unwrap();
    }

    #[test]
    fn publish_then_apply_replicates_a_commit() {
        let (mut wa, mut pa, _da, mut ea, _oa) = replica(0);
        let (mut wb, _pb, _db, mut eb, ob) = replica(1);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        let out = ea.publish(&mut wa, 1_000).unwrap();
        assert_eq!(out.len(), 1, "one key changed, one peer");
        let applied = eb.on_delivery(&mut wb, &out[0].bytes, 2_000).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(wb.mv(0).extent(), wa.mv(0).extent(), "extents converge");
        assert_eq!(ob.registry().counter_value("replica.remote_applied"), Some(1));
        assert_eq!(eb.delivered(0), 1);
    }

    #[test]
    fn concurrent_writes_resolve_by_hlc_both_sides_agree() {
        let (mut wa, mut pa, _da, mut ea, _oa) = replica(0);
        let (mut wb, mut pb, _db, mut eb, ob) = replica(1);
        // Both replicas change key 1, unaware of each other (a partition).
        commit_v(&mut pa, &mut wa, 1, 10, 111);
        commit_v(&mut pb, &mut wb, 1, 10, 222);
        let out_a = ea.publish(&mut wa, 1_000).unwrap();
        let out_b = eb.publish(&mut wb, 1_000).unwrap();
        // Cross-deliver after the heal.
        let _ = eb.on_delivery(&mut wb, &out_a[0].bytes, 5_000).unwrap();
        let _ = ea.on_delivery(&mut wa, &out_b[0].bytes, 5_000).unwrap();
        assert_eq!(wa.mv(0).extent(), wb.mv(0).extent(), "deterministic LWW winner");
        // Same HLC physical time → origin 1 wins the tie.
        let winner = Tuple::of([Value::from(1), Value::from(222)]);
        assert_eq!(wa.mv(0).extent().count(&winner), 1);
        assert_eq!(ob.registry().counter_value("replica.conflicts"), Some(1));
        // b's own value won, so the incoming copy of a's write is the loser.
        assert_eq!(ob.registry().counter_value("replica.superseded"), Some(1));
        assert_eq!(ob.registry().counter_value("replica.remote_applied"), Some(0));
    }

    #[test]
    fn duplicate_deliveries_are_dropped() {
        let (mut wa, mut pa, _da, mut ea, _oa) = replica(0);
        let (mut wb, _pb, _db, mut eb, ob) = replica(1);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        let out = ea.publish(&mut wa, 1_000).unwrap();
        let first = eb.on_delivery(&mut wb, &out[0].bytes, 2_000).unwrap();
        let second = eb.on_delivery(&mut wb, &out[0].bytes, 3_000).unwrap();
        assert_eq!(first.len(), 1);
        assert!(second.is_empty(), "the duplicate resolves nothing");
        assert_eq!(ob.registry().counter_value("replica.duplicates"), Some(1));
    }

    #[test]
    fn out_of_order_deliveries_buffer_and_gap() {
        let (mut wa, mut pa, _da, mut ea, _oa) = replica(0);
        let (mut wb, _pb, _db, mut eb, _ob) = replica(1);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        commit_v(&mut pa, &mut wa, 1, 20, 30);
        let out = ea.publish(&mut wa, 1_000).unwrap();
        assert_eq!(out.len(), 2);
        // Deliver seq 2 first: buffered, a gap is reported.
        let none = eb.on_delivery(&mut wb, &out[1].bytes, 2_000).unwrap();
        assert!(none.is_empty());
        assert_eq!(eb.gaps(), vec![(0, 0)]);
        // Seq 1 releases both, in order.
        let both = eb.on_delivery(&mut wb, &out[0].bytes, 2_500).unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(wb.mv(0).extent(), wa.mv(0).extent());
    }

    #[test]
    fn recover_republishes_an_unpublished_commit() {
        let (mut wa, mut pa, da, ea, oa) = replica(0);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        // Crash between commit and publish: the Applied record is durable,
        // no Published record exists. (Simulated by dropping both halves.)
        drop(ea);
        let info = pa.space().info().clone();
        drop(wa);
        let (mut back, _report) =
            Warehouse::recover(Box::new(da.clone()), info, oa.clone()).unwrap();
        let ext = back.replica_ext().to_vec();
        let tail = back.take_replica_tail();
        let eng = ReplicaEngine::recover(0, 2, vec![0], oa, &ext, tail, &mut back, 9_000).unwrap();
        let resend = eng.unacked();
        assert_eq!(resend.len(), 1, "the lost publish is regenerated");
        let m = dec_msg(&resend[0].bytes).unwrap();
        assert_eq!(m.key, Value::from(1));
        assert_eq!(m.post.iter().count(), 1);
    }

    #[test]
    fn recover_resends_published_but_unacked_messages_with_same_seq() {
        let (mut wa, mut pa, da, mut ea, oa) = replica(0);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        let out = ea.publish(&mut wa, 1_000).unwrap();
        let orig = dec_msg(&out[0].bytes).unwrap();
        // Crash after log-then-send, before any ack.
        drop(ea);
        let info = pa.space().info().clone();
        drop(wa);
        let (mut back, _report) =
            Warehouse::recover(Box::new(da.clone()), info, oa.clone()).unwrap();
        let ext = back.replica_ext().to_vec();
        let tail = back.take_replica_tail();
        let eng = ReplicaEngine::recover(0, 2, vec![0], oa, &ext, tail, &mut back, 9_000).unwrap();
        let resend = eng.unacked();
        assert_eq!(resend.len(), 1);
        let m = dec_msg(&resend[0].bytes).unwrap();
        assert_eq!(
            (m.seq, m.hlc, &m.post),
            (orig.seq, orig.hlc, &orig.post),
            "identical bytes re-sent, no seq reuse for different content"
        );
    }

    #[test]
    fn receiver_floor_survives_a_kill() {
        let (mut wa, mut pa, _da, mut ea, _oa) = replica(0);
        let (mut wb, pb, db, mut eb, ob) = replica(1);
        commit_v(&mut pa, &mut wa, 1, 10, 20);
        let out = ea.publish(&mut wa, 1_000).unwrap();
        let _ = eb.on_delivery(&mut wb, &out[0].bytes, 2_000).unwrap();
        let frozen = wb.mv(0).extent().clone();
        drop(eb);
        let info = pb.space().info().clone();
        drop(wb);
        let (mut back, _report) =
            Warehouse::recover(Box::new(db.clone()), info, ob.clone()).unwrap();
        assert_eq!(back.mv(0).extent(), &frozen, "remote apply survived via the WAL");
        let ext = back.replica_ext().to_vec();
        let tail = back.take_replica_tail();
        let mut eng =
            ReplicaEngine::recover(1, 2, vec![0], ob, &ext, tail, &mut back, 9_000).unwrap();
        assert_eq!(eng.delivered(0), 1, "delivery floor recovered");
        // A re-sent duplicate of seq 1 is dropped, not re-applied.
        let again = eng.on_delivery(&mut back, &out[0].bytes, 9_500).unwrap();
        assert!(again.is_empty());
        assert_eq!(back.mv(0).extent(), &frozen);
    }
}
