//! Minimal JSON helpers (no serde): the writers everything in dyno-obs
//! exports through, plus a small recursive-descent [`parse`]r so tooling
//! (the `tracecheck` trace validator, the forensics analyzer) can read the
//! files back without a registry dependency.
//!
//! Everything dyno-obs exports — JSONL traces, metric snapshots, the bench
//! binaries' `--json` result files — is assembled with these few functions,
//! so string escaping is correct in exactly one place.

use std::collections::BTreeMap;

/// Appends `s` to `out` as a JSON string literal, quotes included.
///
/// Escapes `"` and `\`, the common control characters as their short forms
/// (`\n`, `\t`, `\r`), and every other control character as `\u00XX`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str(&mut out, s);
    out
}

/// Appends a JSON number for `v`. Non-finite values (which JSON cannot
/// represent) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`), which is
/// fine for the validation/analysis uses this parser serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key` of an object value, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses one JSON document. Errors carry the byte offset and a short
/// reason. Trailing whitespace is allowed; trailing garbage is not.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates map to the replacement character — the
                        // exporters never emit them.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape("hello"), r#""hello""#);
        assert_eq!(escape(""), r#""""#);
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escape(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escape(r"a\b"), r#""a\\b""#);
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("a\tb"), r#""a\tb""#);
        assert_eq!(escape("a\rb"), r#""a\rb""#);
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(escape("\u{1f}"), "\"\\u001f\"");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(escape("café ☕"), "\"café ☕\"");
    }

    #[test]
    fn floats_render_and_nonfinite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn parse_round_trips_what_the_writers_emit() {
        let doc = r#"{"a":1,"b":[true,null,"x\"y\n"],"c":{"d":-2.5e1}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_num), Some(1.0));
        let b = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_str(), Some("x\"y\n"));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Value::as_num), Some(-25.0));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#""café \\ \t""#).unwrap();
        assert_eq!(v.as_str(), Some("café \\ \t"));
        assert_eq!(parse("\"☕\"").unwrap().as_str(), Some("☕"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err(), "trailing garbage");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse(" { } ").unwrap(), Value::Obj(Default::default()));
    }
}
