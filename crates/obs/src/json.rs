//! Minimal JSON writing helpers (no parser, no serde).
//!
//! Everything dyno-obs exports — JSONL traces, metric snapshots, the bench
//! binaries' `--json` result files — is assembled with these few functions,
//! so string escaping is correct in exactly one place.

/// Appends `s` to `out` as a JSON string literal, quotes included.
///
/// Escapes `"` and `\`, the common control characters as their short forms
/// (`\n`, `\t`, `\r`), and every other control character as `\u00XX`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str(&mut out, s);
    out
}

/// Appends a JSON number for `v`. Non-finite values (which JSON cannot
/// represent) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape("hello"), r#""hello""#);
        assert_eq!(escape(""), r#""""#);
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escape(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escape(r"a\b"), r#""a\\b""#);
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("a\tb"), r#""a\tb""#);
        assert_eq!(escape("a\rb"), r#""a\rb""#);
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(escape("\u{1f}"), "\"\\u001f\"");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(escape("café ☕"), "\"café ☕\"");
    }

    #[test]
    fn floats_render_and_nonfinite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
