//! Per-update provenance: the [`Lineage`] store.
//!
//! Every source update (DU or SC) is assigned a **causal id** at source
//! commit — the `UpdateId` the wrapper stamps on its message, globally
//! unique and stable across every layer (transport, ingress, UMQ, WAL).
//! Instrumented code appends [`ProvRecord`]s against that id as the update
//! moves through the stack: committed, dropped/duplicated/replayed by the
//! transport, admitted to the UMQ, found in an unsafe dependency, merged
//! into a cyclic batch, named in an Intent record, parked, applied, and
//! finally reflected in a view-extent delta.
//!
//! The store follows the same contract as the span [`Tracer`](crate::trace::Tracer):
//! a bounded ring that drops (and counts) the oldest records when full, and
//! a **true no-op** when the collector is disabled or lineage is off — no
//! allocation, no field copy, no clock read (see
//! [`Collector::prov`](crate::Collector::prov)).
//!
//! ## Batch ids
//!
//! Cyclic-group merges and atomic Applied records concern a *set* of causal
//! ids. Those get a synthetic id in a disjoint namespace — the high bit set
//! ([`BATCH_BIT`]) plus a sequence number — and the member list is kept in a
//! bounded side map so [`Lineage::explain`] can traverse from a member id
//! through every batch it joined, and from a batch id to its members.

use std::collections::{BTreeMap, VecDeque};

use crate::json;
use crate::trace::{Field, FieldValue};

/// High bit marking a synthetic batch id (member lists live in the side
/// map); real causal ids come from source-commit sequence numbers and never
/// reach this range.
pub const BATCH_BIT: u64 = 1 << 63;

/// Canonical stage names, so producers and the forensics analyzer agree.
pub mod stage {
    /// The update committed at its source (the causal id is born here).
    pub const COMMIT: &str = "commit";
    /// The transport dropped the message (recoverable only by NACK).
    pub const XPORT_DROP: &str = "xport.drop";
    /// The transport duplicated the delivery.
    pub const XPORT_DUP: &str = "xport.dup";
    /// The transport delayed the delivery.
    pub const XPORT_DELAY: &str = "xport.delay";
    /// The delivery batch containing this update was shuffled.
    pub const XPORT_REORDER: &str = "xport.reorder";
    /// Redelivered in response to a NACK (gap refetch).
    pub const XPORT_NACK: &str = "xport.nack";
    /// Retransmitted from the wrapper send log after a warehouse restart.
    pub const XPORT_REPLAY: &str = "xport.replay";
    /// A redundant copy was dropped at the UMQ ingress gate.
    pub const INGRESS_DUP: &str = "ingress.dup";
    /// Released out of the ingress reorder buffer (predecessor arrived).
    pub const INGRESS_RESEQ: &str = "ingress.reseq";
    /// Admitted to the UMQ (enqueued for maintenance).
    pub const ADMIT: &str = "admit";
    /// Rejected at a full bounded UMQ (terminal: the update is never
    /// reflected; fields: `source`, `version`, `depth`).
    pub const SHED: &str = "shed";
    /// Found on an unsafe dependency edge (fields: `with`, `class`, `kind`).
    pub const CONFLICT: &str = "conflict";
    /// Merged into a cyclic-group batch (batch record lists the members).
    pub const MERGE: &str = "merge";
    /// The queue was reordered into a legal schedule around this update.
    pub const REORDER: &str = "reorder";
    /// Named in a maintenance Intent (queries are about to run).
    pub const INTENT: &str = "intent";
    /// A SWEEP compensation pass ran for this update (field: `pending`).
    pub const SWEEP: &str = "sweep";
    /// Maintenance parked on an unavailable source; the next `intent`
    /// record for the same id marks the unpark/retry.
    pub const PARK: &str = "park";
    /// Maintenance applied the update to the view (terminal, exactly once).
    pub const APPLIED: &str = "applied";
    /// The committed view-extent delta for the batch (fields: `rows`).
    pub const EXTENT: &str = "extent";
    /// A committed extent delta was published to a peer replica (fields:
    /// `peer`, `seq`, `view`).
    pub const REPL_SEND: &str = "repl.send";
    /// A peer replica's delta was received in causal order (fields:
    /// `origin`, `seq`, `view`).
    pub const REPL_RECV: &str = "repl.recv";
    /// A received peer delta was applied to the local extent (terminal for
    /// the remote-apply path, exactly once per receiving replica; fields:
    /// `origin`, `lag_us`).
    pub const REPL_APPLY: &str = "repl.apply";
    /// A received peer delta lost last-writer-wins conflict resolution and
    /// was discarded without being applied (terminal, exactly once per
    /// receiving replica, mutually exclusive with `repl.apply`; fields:
    /// `origin`, `kind` = "rd").
    pub const SUPERSEDED: &str = "superseded";
}

/// One provenance record: *update `id` reached `stage` at `ts_us`*.
#[derive(Debug, Clone)]
pub struct ProvRecord {
    /// Timestamp (collector clock, microseconds).
    pub ts_us: u64,
    /// The causal id (or a [`BATCH_BIT`]-tagged batch id).
    pub id: u64,
    /// Which propagation point recorded it (see [`stage`]).
    pub stage: &'static str,
    /// Structured context.
    pub fields: Vec<Field>,
}

impl ProvRecord {
    /// Appends the record as one JSON line.
    pub fn push_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"ts_us\":{},\"id\":{},\"stage\":", self.ts_us, self.id);
        json::push_str(out, self.stage);
        for (k, v) in &self.fields {
            out.push(',');
            json::push_str(out, k);
            out.push(':');
            match v {
                FieldValue::Str(s) => json::push_str(out, s),
                FieldValue::Text(s) => json::push_str(out, s),
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(x) => json::push_f64(out, *x),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}\n");
    }
}

/// The bounded provenance store.
#[derive(Debug)]
pub struct Lineage {
    capacity: usize,
    ring: VecDeque<ProvRecord>,
    dropped: u64,
    next_batch: u64,
    /// Batch id → member causal ids; bounded to the ring capacity (oldest
    /// batches evicted first — ids are monotonic, so the first key is the
    /// oldest).
    batches: BTreeMap<u64, Vec<u64>>,
}

impl Lineage {
    /// A store holding at most `capacity` records (and member lists for at
    /// most `capacity` batches).
    pub fn new(capacity: usize) -> Self {
        Lineage {
            capacity,
            ring: VecDeque::new(),
            dropped: 0,
            next_batch: 0,
            batches: BTreeMap::new(),
        }
    }

    /// Appends one record, evicting the oldest when full.
    pub fn record(&mut self, ts_us: u64, id: u64, stage: &'static str, fields: Vec<Field>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ProvRecord { ts_us, id, stage, fields });
    }

    /// Registers a batch over `members` and returns its synthetic id.
    pub fn new_batch(&mut self, members: &[u64]) -> u64 {
        self.next_batch += 1;
        let id = BATCH_BIT | self.next_batch;
        if self.batches.len() >= self.capacity.max(1) {
            let oldest = *self.batches.keys().next().expect("non-empty map");
            self.batches.remove(&oldest);
        }
        self.batches.insert(id, members.to_vec());
        id
    }

    /// Member causal ids of a batch, if still retained.
    pub fn members(&self, batch_id: u64) -> Option<&[u64]> {
        self.batches.get(&batch_id).map(Vec::as_slice)
    }

    /// Every retained record, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &ProvRecord> {
        self.ring.iter()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The lineage of `id`: every record carrying the id itself, plus every
    /// record of a batch the id is a member of. For a batch id, the batch's
    /// own records plus every member's records. Ordered oldest first.
    pub fn explain(&self, id: u64) -> Vec<ProvRecord> {
        let wanted = |rid: u64| -> bool {
            if rid == id {
                return true;
            }
            if id & BATCH_BIT != 0 {
                // Query is a batch: include its members' records.
                self.members(id).is_some_and(|m| m.contains(&rid))
            } else {
                // Query is a causal id: include batches it belongs to.
                rid & BATCH_BIT != 0 && self.members(rid).is_some_and(|m| m.contains(&id))
            }
        };
        self.ring.iter().filter(|r| wanted(r.id)).cloned().collect()
    }

    /// The whole store as JSONL, oldest first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.ring {
            r.push_jsonl(&mut out);
        }
        out
    }

    /// Empties the store (batch member lists included).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.batches.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::field;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut l = Lineage::new(2);
        l.record(1, 10, stage::COMMIT, vec![]);
        l.record(2, 11, stage::COMMIT, vec![]);
        l.record(3, 12, stage::COMMIT, vec![]);
        assert_eq!(l.records().count(), 2);
        assert_eq!(l.dropped(), 1);
        assert_eq!(l.records().next().unwrap().id, 11, "oldest evicted first");
    }

    #[test]
    fn explain_traverses_batches_both_ways() {
        let mut l = Lineage::new(16);
        l.record(1, 7, stage::COMMIT, vec![]);
        l.record(2, 8, stage::COMMIT, vec![]);
        let b = l.new_batch(&[7, 8]);
        l.record(3, b, stage::MERGE, vec![field("members", 2u64)]);
        l.record(4, 7, stage::APPLIED, vec![]);

        let seven = l.explain(7);
        let stages: Vec<&str> = seven.iter().map(|r| r.stage).collect();
        assert_eq!(stages, vec![stage::COMMIT, stage::MERGE, stage::APPLIED]);

        let batch = l.explain(b);
        assert_eq!(batch.len(), 4, "batch explain covers both members and itself");
        assert_eq!(l.members(b), Some(&[7u64, 8][..]));
    }

    #[test]
    fn batch_ids_live_in_a_disjoint_namespace() {
        let mut l = Lineage::new(4);
        let a = l.new_batch(&[1]);
        let b = l.new_batch(&[2]);
        assert_ne!(a, b);
        assert!(a & BATCH_BIT != 0 && b & BATCH_BIT != 0);
    }

    #[test]
    fn jsonl_escapes_and_renders_fields() {
        let mut l = Lineage::new(4);
        l.record(5, 1, stage::CONFLICT, vec![field("with", 2u64), field("kind", "SD")]);
        let out = l.export_jsonl();
        assert_eq!(
            out,
            "{\"ts_us\":5,\"id\":1,\"stage\":\"conflict\",\"with\":2,\"kind\":\"SD\"}\n"
        );
    }

    #[test]
    fn zero_capacity_store_retains_nothing() {
        let mut l = Lineage::new(0);
        l.record(1, 1, stage::COMMIT, vec![]);
        assert_eq!(l.records().count(), 0);
        assert_eq!(l.dropped(), 1);
    }
}
