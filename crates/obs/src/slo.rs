//! Per-view staleness tracking and declarative SLO evaluation.
//!
//! **Staleness** is end-to-end: the age of the oldest source commit a view
//! has *not yet* reflected. A [`StalenessTracker`] timestamps each source
//! commit (`note_commit`) and each view refresh (`note_refresh`); the delta
//! is one staleness sample, recorded per view into a histogram that serves
//! both lifetime percentiles and per-window snapshots. Views register the
//! set of sources their definition reads, so a commit against a source a
//! view never joins does not age that view — under skewed load, per-view
//! staleness genuinely diverges even though the warehouse refreshes all
//! views in lockstep.
//!
//! A window's **observed p99** is `max(p99 of the refresh samples in the
//! window, age of the oldest still-pending commit at the window boundary)`:
//! a stalled warehouse that refreshes nothing must page, not look idle.
//! Shed updates (`note_shed`) are *removed* from pending — a shed update
//! will never be reflected, so it measures lost load (the `umq.shed`
//! counter), not staleness.
//!
//! **SLO evaluation** is a multi-window burn-rate state machine
//! ([`SloEvaluator`]) over the per-window verdicts (`bad` ⇔ observed p99 >
//! target). With policy `P` and the last `P.long_windows` verdicts:
//!
//! - → **page** when at least `P.page_short_bad` of the last
//!   `P.short_windows` windows are bad **and** at least `P.page_long_bad`
//!   of the last `P.long_windows` are (fast burn confirmed by sustained
//!   burn);
//! - → **warn** when at least `P.warn_bad` of the last `P.short_windows`
//!   are bad;
//! - → **ok** only when the last `P.short_windows` contain no bad window;
//! - otherwise the state *holds* (a page whose page condition lapsed
//!   degrades to warn). Since `P.warn_bad ≥ 2`, a single isolated bad
//!   window can never move the state — the machine cannot flap.
//!
//! The machine is a pure function of the verdict sequence, so same-seed
//! simulated runs produce bit-identical alert timelines.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::collector::Collector;
use crate::json;
use crate::metrics::{Counter, HistWindow, Histogram};
use crate::trace::field;

/// Alert state of one view's staleness SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SloState {
    /// Within target.
    #[default]
    Ok,
    /// Burning error budget: sustained short-window breaches.
    Warn,
    /// Fast burn confirmed over the long window — a human would be paged.
    Page,
}

impl SloState {
    /// Lowercase name (`ok` / `warn` / `page`).
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Page => "page",
        }
    }
}

impl fmt::Display for SloState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A declarative staleness SLO: target plus burn-rate thresholds (see the
/// module docs for the exact transition rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// The objective: per-window observed p99 staleness must not exceed
    /// this many microseconds.
    pub target_p99_us: u64,
    /// Length of the fast-burn window, in sampling windows.
    pub short_windows: usize,
    /// Length of the sustained-burn window, in sampling windows.
    pub long_windows: usize,
    /// Bad windows among the last `short_windows` needed to warn (≥ 2, or
    /// the no-single-window-flap guarantee is lost).
    pub warn_bad: usize,
    /// Bad windows among the last `short_windows` needed to page.
    pub page_short_bad: usize,
    /// Bad windows among the last `long_windows` needed to page.
    pub page_long_bad: usize,
}

impl SloPolicy {
    /// The documented default burn-rate shape for a given target: warn at
    /// 2-of-3 recent windows bad, page when the last 3 are all bad and at
    /// least 6 of the last 12 are.
    pub fn target(target_p99_us: u64) -> Self {
        SloPolicy {
            target_p99_us,
            short_windows: 3,
            long_windows: 12,
            warn_bad: 2,
            page_short_bad: 3,
            page_long_bad: 6,
        }
    }
}

/// The burn-rate state machine for one view (see the module docs).
#[derive(Debug, Clone)]
pub struct SloEvaluator {
    policy: SloPolicy,
    history: VecDeque<bool>,
    state: SloState,
    evaluations: u64,
    breaches: u64,
}

impl SloEvaluator {
    /// A fresh evaluator in the `ok` state.
    pub fn new(policy: SloPolicy) -> Self {
        assert!(policy.short_windows >= 1 && policy.long_windows >= policy.short_windows);
        assert!(policy.warn_bad >= 2, "warn_bad < 2 would flap on a single bad window");
        SloEvaluator {
            policy,
            history: VecDeque::new(),
            state: SloState::Ok,
            evaluations: 0,
            breaches: 0,
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Current alert state.
    pub fn state(&self) -> SloState {
        self.state
    }

    /// Windows evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Bad (target-exceeding) windows seen so far.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Feeds one window's observed p99 staleness; returns `Some((from, to))`
    /// when the alert state changed.
    pub fn evaluate(&mut self, observed_p99_us: u64) -> Option<(SloState, SloState)> {
        let bad = observed_p99_us > self.policy.target_p99_us;
        self.evaluations += 1;
        if bad {
            self.breaches += 1;
        }
        if self.history.len() == self.policy.long_windows {
            self.history.pop_front();
        }
        self.history.push_back(bad);
        let short_bad =
            self.history.iter().rev().take(self.policy.short_windows).filter(|&&b| b).count();
        let long_bad = self.history.iter().filter(|&&b| b).count();
        let next =
            if short_bad >= self.policy.page_short_bad && long_bad >= self.policy.page_long_bad {
                SloState::Page
            } else if short_bad >= self.policy.warn_bad {
                SloState::Warn
            } else if short_bad == 0 {
                SloState::Ok
            } else {
                // Hysteresis: a lone bad (or lone good) window holds the line;
                // a page whose page condition lapsed degrades one step.
                match self.state {
                    SloState::Page => SloState::Warn,
                    held => held,
                }
            };
        let prev = self.state;
        self.state = next;
        (prev != next).then_some((prev, next))
    }
}

/// One emitted staleness window for one view.
#[derive(Debug, Clone, Copy)]
pub struct LanePoint {
    /// Window boundary (clock µs).
    pub end_us: u64,
    /// Summary of the refresh-time staleness samples in the window.
    pub window: HistWindow,
    /// `max(window.p99, oldest pending commit age at the boundary)`.
    pub observed_p99_us: u64,
    /// Alert state after evaluating this window.
    pub state: SloState,
}

#[derive(Debug)]
struct Lane {
    name: String,
    sources: Vec<u32>,
    /// Commits admitted for this view and not yet reflected:
    /// `(source, version, commit_us)` in commit order per source.
    pending: VecDeque<(u32, u64, u64)>,
    hist: Histogram,
    refreshed: u64,
    evaluator: Option<SloEvaluator>,
    points: VecDeque<LanePoint>,
    dropped: u64,
    /// Tombstone: a retired (dropped) view keeps its lane index — indices
    /// were handed out to callers — but stops participating in commit
    /// tracking, refreshes, sampling, and burn-rate evaluation.
    retired: bool,
}

#[derive(Debug)]
struct Inner {
    lanes: Vec<Lane>,
    capacity: usize,
    window_us: u64,
    next_window_end: u64,
    windows: u64,
    policy: Option<SloPolicy>,
    transitions: Vec<(u64, String, SloState, SloState)>,
    obs: Collector,
    evals: Counter,
    breaches: Counter,
    warns: Counter,
    pages: Counter,
}

/// Tracks per-view end-to-end staleness and evaluates SLOs on a window
/// cadence. Cheap-clone shared handle (like [`Collector`]): the simulation
/// port notes commits, the warehouse notes refreshes and sheds, the monitor
/// loop drives sampling — all through clones of one tracker.
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    inner: Rc<RefCell<Inner>>,
}

impl StalenessTracker {
    /// A tracker holding at most `window_capacity` points per view. Sampling
    /// is inert until [`StalenessTracker::set_cadence`].
    pub fn new(window_capacity: usize) -> Self {
        assert!(window_capacity > 0);
        StalenessTracker {
            inner: Rc::new(RefCell::new(Inner {
                lanes: Vec::new(),
                capacity: window_capacity,
                window_us: 0,
                next_window_end: 0,
                windows: 0,
                policy: None,
                transitions: Vec::new(),
                obs: Collector::disabled(),
                evals: Counter::default(),
                breaches: Counter::default(),
                warns: Counter::default(),
                pages: Counter::default(),
            })),
        }
    }

    /// Binds an observability collector: SLO evaluations tick `slo.*`
    /// counters and state transitions are recorded as warn-level events.
    pub fn bind_obs(&self, obs: &Collector) {
        let mut t = self.inner.borrow_mut();
        t.evals = obs.counter("slo.evaluations");
        t.breaches = obs.counter("slo.breaches");
        t.warns = obs.counter("slo.warns");
        t.pages = obs.counter("slo.pages");
        t.obs = obs.clone();
    }

    /// Sets the sampling cadence: one window per `window_us`, the first
    /// ending at `start_us + window_us`.
    pub fn set_cadence(&self, window_us: u64, start_us: u64) {
        assert!(window_us > 0);
        let mut t = self.inner.borrow_mut();
        t.window_us = window_us;
        t.next_window_end = start_us + window_us;
    }

    /// Applies an SLO policy to every registered view (and to views
    /// registered later).
    pub fn set_slo(&self, policy: SloPolicy) {
        let mut t = self.inner.borrow_mut();
        t.policy = Some(policy);
        for lane in &mut t.lanes {
            lane.evaluator = Some(SloEvaluator::new(policy));
        }
    }

    /// Registers a view over the given source ids; returns its lane index.
    pub fn register_view(&self, name: &str, sources: &[u32]) -> usize {
        let mut t = self.inner.borrow_mut();
        let evaluator = t.policy.map(SloEvaluator::new);
        t.lanes.push(Lane {
            name: name.to_string(),
            sources: sources.to_vec(),
            pending: VecDeque::new(),
            hist: Histogram::default(),
            refreshed: 0,
            evaluator,
            points: VecDeque::new(),
            dropped: 0,
            retired: false,
        });
        t.lanes.len() - 1
    }

    /// Retires view `lane`: discards its pending commits, disables its
    /// evaluator, and excludes it from future commits, refreshes, and
    /// window sampling. The lane is tombstoned in place (indices stay
    /// stable); its emitted points and lifetime histogram remain readable.
    pub fn drop_view(&self, lane: usize) {
        let mut t = self.inner.borrow_mut();
        let l = &mut t.lanes[lane];
        l.retired = true;
        l.pending.clear();
        l.evaluator = None;
    }

    /// Whether view `lane` has been retired via [`StalenessTracker::drop_view`].
    pub fn is_retired(&self, lane: usize) -> bool {
        self.inner.borrow().lanes[lane].retired
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.inner.borrow().lanes.len()
    }

    /// Registered view names, lane order.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.borrow().lanes.iter().map(|l| l.name.clone()).collect()
    }

    /// Notes a source commit at `at_us`: it becomes pending for every view
    /// that reads `source`.
    pub fn note_commit(&self, source: u32, version: u64, at_us: u64) {
        let mut t = self.inner.borrow_mut();
        for lane in &mut t.lanes {
            if !lane.retired && lane.sources.contains(&source) {
                lane.pending.push_back((source, version, at_us));
            }
        }
    }

    /// Notes that an admitted commit was shed: it will never be reflected,
    /// so it stops aging the views (lost load is the `umq.shed` counter's
    /// story, not staleness's).
    pub fn note_shed(&self, source: u32, version: u64) {
        let mut t = self.inner.borrow_mut();
        for lane in &mut t.lanes {
            lane.pending.retain(|&(s, v, _)| !(s == source && v == version));
        }
    }

    /// Notes a view refresh: every pending commit now covered by the
    /// reflected `(source, version)` vector is resolved, recording its age
    /// at `at_us` as one staleness sample per covering view.
    pub fn note_refresh(&self, reflected: &[(u32, u64)], at_us: u64) {
        let mut t = self.inner.borrow_mut();
        for lane in &mut t.lanes {
            Self::refresh_lane(lane, reflected, at_us);
        }
    }

    /// Notes a refresh of *one* view: only `lane`'s pending commits are
    /// resolved against the reflected vector. A multi-view warehouse whose
    /// views advance independently (a parked view defers a batch its peers
    /// commit) reports each view's own reflected vector through this,
    /// keeping the deferred view's staleness honestly aging.
    pub fn note_refresh_for(&self, lane: usize, reflected: &[(u32, u64)], at_us: u64) {
        let mut t = self.inner.borrow_mut();
        Self::refresh_lane(&mut t.lanes[lane], reflected, at_us);
    }

    fn refresh_lane(lane: &mut Lane, reflected: &[(u32, u64)], at_us: u64) {
        if lane.retired {
            return;
        }
        let before = lane.pending.len();
        let hist = &lane.hist;
        lane.pending.retain(|&(s, v, committed)| {
            let covered = reflected.iter().any(|&(rs, rv)| rs == s && rv >= v);
            if covered {
                hist.record(at_us.saturating_sub(committed));
            }
            !covered
        });
        lane.refreshed += (before - lane.pending.len()) as u64;
    }

    /// Age of view `lane`'s oldest pending commit at `now_us` (0 when
    /// nothing is pending or every pending commit is in the future).
    pub fn current_staleness_us(&self, lane: usize, now_us: u64) -> u64 {
        let t = self.inner.borrow();
        t.lanes[lane]
            .pending
            .iter()
            .map(|&(_, _, committed)| now_us.saturating_sub(committed))
            .max()
            .unwrap_or(0)
    }

    /// Emits a staleness window for every boundary `now_us` has passed
    /// (no-op before [`StalenessTracker::set_cadence`]). Returns windows
    /// emitted. Pending ages are evaluated at each boundary exactly, so a
    /// multi-window clock jump during a long maintenance batch still yields
    /// a correct per-boundary stall series.
    pub fn maybe_sample(&self, now_us: u64) -> u64 {
        let mut emitted = 0;
        loop {
            let end = {
                let t = self.inner.borrow();
                if t.window_us == 0 || now_us < t.next_window_end {
                    break;
                }
                t.next_window_end
            };
            self.sample_window(end);
            let mut t = self.inner.borrow_mut();
            t.next_window_end += t.window_us;
            emitted += 1;
        }
        emitted
    }

    /// Closes the current partial window at `now_us` and restarts the
    /// cadence from there (interactive use).
    pub fn sample_now(&self, now_us: u64) {
        self.sample_window(now_us);
        let mut t = self.inner.borrow_mut();
        if t.window_us > 0 {
            t.next_window_end = now_us + t.window_us;
        }
    }

    fn sample_window(&self, end_us: u64) {
        let mut t = self.inner.borrow_mut();
        t.windows += 1;
        let capacity = t.capacity;
        let mut fired: Vec<(String, SloState, SloState, u64)> = Vec::new();
        let mut evals = 0u64;
        let mut breaches = 0u64;
        for lane in &mut t.lanes {
            if lane.retired {
                continue;
            }
            let window = lane.hist.snapshot_and_reset_window();
            let pending_age = lane
                .pending
                .iter()
                .map(|&(_, _, committed)| end_us.saturating_sub(committed))
                .max()
                .unwrap_or(0);
            let observed_p99_us = window.p99.max(pending_age);
            let mut state = SloState::Ok;
            if let Some(eval) = &mut lane.evaluator {
                evals += 1;
                let before = eval.breaches();
                if let Some((from, to)) = eval.evaluate(observed_p99_us) {
                    fired.push((lane.name.clone(), from, to, observed_p99_us));
                }
                breaches += eval.breaches() - before;
                state = eval.state();
            }
            if lane.points.len() == capacity {
                lane.points.pop_front();
                lane.dropped += 1;
            }
            lane.points.push_back(LanePoint { end_us, window, observed_p99_us, state });
        }
        t.evals.add(evals);
        t.breaches.add(breaches);
        for (name, from, to, observed) in fired {
            match to {
                SloState::Warn => t.warns.inc(),
                SloState::Page => t.pages.inc(),
                SloState::Ok => {}
            }
            t.obs.warn(
                "slo.state",
                &[
                    field("view", name.clone()),
                    field("from", from.as_str()),
                    field("to", to.as_str()),
                    field("observed_p99_us", observed),
                ],
            );
            t.transitions.push((end_us, name, from, to));
        }
    }

    /// Current alert state of view `lane` (`ok` when no SLO is set).
    pub fn state(&self, lane: usize) -> SloState {
        self.inner.borrow().lanes[lane].evaluator.as_ref().map_or(SloState::Ok, SloEvaluator::state)
    }

    /// `(name, state)` for every view, lane order.
    pub fn states(&self) -> Vec<(String, SloState)> {
        let t = self.inner.borrow();
        t.lanes
            .iter()
            .map(|l| {
                (l.name.clone(), l.evaluator.as_ref().map_or(SloState::Ok, SloEvaluator::state))
            })
            .collect()
    }

    /// Lifetime staleness of view `lane`: `(samples, p50, p95, p99)` µs.
    pub fn lifetime(&self, lane: usize) -> (u64, u64, u64, u64) {
        let t = self.inner.borrow();
        let h = &t.lanes[lane].hist;
        let (p50, p95, p99) = h.percentiles();
        (h.count(), p50, p95, p99)
    }

    /// The emitted points of view `lane`, oldest first.
    pub fn points(&self, lane: usize) -> Vec<LanePoint> {
        self.inner.borrow().lanes[lane].points.iter().copied().collect()
    }

    /// Every alert transition so far: `(at_us, view, from, to)`.
    pub fn transitions(&self) -> Vec<(u64, String, SloState, SloState)> {
        self.inner.borrow().transitions.clone()
    }

    /// Windows emitted so far.
    pub fn windows(&self) -> u64 {
        self.inner.borrow().windows
    }

    /// The capture as one JSON object. Per-view points are
    /// `[end_us,count,p50,p95,p99,observed_p99,state]` rows (state 0=ok,
    /// 1=warn, 2=page); transitions carry states by name so scenarios can be
    /// asserted with a string match. Byte-stable for identical runs.
    pub fn to_json(&self) -> String {
        let t = self.inner.borrow();
        let mut out = String::new();
        let _ = write!(out, "{{\"window_us\":{},\"windows\":{},", t.window_us, t.windows);
        if let Some(p) = &t.policy {
            let _ = write!(
                out,
                "\"slo\":{{\"target_p99_us\":{},\"short_windows\":{},\"long_windows\":{},\
                 \"warn_bad\":{},\"page_short_bad\":{},\"page_long_bad\":{}}},",
                p.target_p99_us,
                p.short_windows,
                p.long_windows,
                p.warn_bad,
                p.page_short_bad,
                p.page_long_bad
            );
        }
        out.push_str("\"views\":{");
        for (i, lane) in t.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, &lane.name);
            let (p50, p95, p99) = lane.hist.percentiles();
            let state = lane.evaluator.as_ref().map_or(SloState::Ok, SloEvaluator::state);
            let _ = write!(
                out,
                ":{{{}\"sources\":{:?},\"state\":\"{}\",\"refreshed\":{},\"pending\":{},\
                 \"dropped\":{},\"evaluations\":{},\"breaches\":{},\
                 \"lifetime\":{{\"count\":{},\"p50\":{p50},\"p95\":{p95},\
                 \"p99\":{p99}}},\"points\":[",
                if lane.retired { "\"retired\":true," } else { "" },
                lane.sources,
                state.as_str(),
                lane.refreshed,
                lane.pending.len(),
                lane.dropped,
                lane.evaluator.as_ref().map_or(0, SloEvaluator::evaluations),
                lane.evaluator.as_ref().map_or(0, SloEvaluator::breaches),
                lane.hist.count(),
            );
            for (j, p) in lane.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "[{},{},{},{},{},{},{}]",
                    p.end_us,
                    p.window.count,
                    p.window.p50,
                    p.window.p95,
                    p.window.p99,
                    p.observed_p99_us,
                    p.state as u8
                );
            }
            out.push_str("]}");
        }
        out.push_str("},\"transitions\":[");
        for (i, (at, view, from, to)) in t.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{at},");
            json::push_str(&mut out, view);
            let _ = write!(out, ",\"{}\",\"{}\"]", from.as_str(), to.as_str());
        }
        out.push_str("]}");
        out
    }

    /// An aligned text rendering of per-view staleness and alert state at
    /// `now_us`.
    pub fn render_text(&self, now_us: u64) -> String {
        let t = self.inner.borrow();
        let width = t.lanes.iter().map(|l| l.name.len()).max().unwrap_or(4).max(4);
        let mut out = format!(
            "{:<width$}  {:<5}  {:>8}  {:>9}  lifetime p50/p95/p99 (ms)\n",
            "view", "state", "pending", "stale(ms)"
        );
        for (i, lane) in t.lanes.iter().enumerate() {
            let state = lane.evaluator.as_ref().map_or(SloState::Ok, SloEvaluator::state);
            let stale =
                lane.pending.iter().map(|&(_, _, c)| now_us.saturating_sub(c)).max().unwrap_or(0);
            let (p50, p95, p99) = lane.hist.percentiles();
            let _ = writeln!(
                out,
                "{:<width$}  {:<5}  {:>8}  {:>9}  {}/{}/{}",
                lane.name,
                state.as_str(),
                lane.pending.len(),
                stale / 1000,
                p50 / 1000,
                p95 / 1000,
                p99 / 1000
            );
            let _ = i;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_is_commit_to_refresh_per_relevant_source() {
        let t = StalenessTracker::new(16);
        let a = t.register_view("A", &[0]);
        let b = t.register_view("B", &[0, 1]);
        t.note_commit(0, 1, 100);
        t.note_commit(1, 1, 200);
        assert_eq!(t.current_staleness_us(a, 1_000), 900);
        assert_eq!(t.current_staleness_us(b, 1_000), 900, "oldest pending commit");
        // Refresh covering source 0 only: A is fully fresh, B still waits on
        // source 1 — the lockstep refresh diverges per view via relevance.
        t.note_refresh(&[(0, 1)], 600);
        assert_eq!(t.current_staleness_us(a, 1_000), 0);
        assert_eq!(t.current_staleness_us(b, 1_000), 800);
        assert_eq!(t.lifetime(a), (1, 500, 500, 500), "one 500µs sample");
        t.note_refresh(&[(0, 1), (1, 1)], 700);
        assert_eq!(t.lifetime(b).0, 2);
    }

    #[test]
    fn shed_commits_stop_aging_views() {
        let t = StalenessTracker::new(16);
        let a = t.register_view("A", &[0]);
        t.note_commit(0, 1, 100);
        t.note_commit(0, 2, 200);
        t.note_shed(0, 1);
        assert_eq!(t.current_staleness_us(a, 1_000), 800, "only the admitted commit ages");
        t.note_shed(0, 2);
        assert_eq!(t.current_staleness_us(a, 1_000), 0);
        assert_eq!(t.lifetime(a).0, 0, "shed commits never become samples");
    }

    #[test]
    fn per_lane_refresh_leaves_peer_views_pending() {
        let t = StalenessTracker::new(16);
        let a = t.register_view("A", &[0]);
        let b = t.register_view("B", &[0]);
        t.note_commit(0, 1, 100);
        t.note_refresh_for(a, &[(0, 1)], 600);
        assert_eq!(t.current_staleness_us(a, 1_000), 0);
        assert_eq!(t.current_staleness_us(b, 1_000), 900, "B's copy stays pending");
        assert_eq!(t.lifetime(a), (1, 500, 500, 500));
        assert_eq!(t.lifetime(b).0, 0, "no sample until B itself refreshes");
    }

    #[test]
    fn dropped_view_stops_contributing_to_evaluation() {
        let t = StalenessTracker::new(16);
        let a = t.register_view("A", &[0]);
        let b = t.register_view("B", &[0]);
        t.set_slo(SloPolicy::target(1_000));
        t.set_cadence(1_000, 0);
        t.note_commit(0, 1, 0);
        t.drop_view(b);
        assert!(t.is_retired(b));
        assert_eq!(t.current_staleness_us(b, 10_000), 0, "pending discarded on drop");
        for w in 1..=8u64 {
            t.maybe_sample(w * 1_000);
        }
        assert_eq!(t.state(a), SloState::Page, "the live lane still pages");
        assert_eq!(t.state(b), SloState::Ok, "a retired lane never evaluates");
        assert!(t.points(b).is_empty(), "no windows emitted after retirement");
        t.note_commit(0, 2, 9_000);
        assert_eq!(t.current_staleness_us(b, 10_000), 0, "new commits skip the lane");
        t.note_refresh_for(b, &[(0, 2)], 9_500);
        assert_eq!(t.lifetime(b).0, 0, "refreshes are no-ops for the lane");
        assert!(t.to_json().contains("\"retired\":true"));
    }

    #[test]
    fn stalled_view_pages_via_pending_age() {
        // No refresh ever happens; the pending age alone must drive the SLO
        // through warn to page at the documented thresholds.
        let t = StalenessTracker::new(32);
        let v = t.register_view("V", &[0]);
        t.set_slo(SloPolicy::target(1_000));
        t.set_cadence(1_000, 0);
        t.note_commit(0, 1, 0);
        let mut states = Vec::new();
        for w in 1..=8u64 {
            t.maybe_sample(w * 1_000);
            states.push(t.state(v));
        }
        // Window 1 observes age 1000 (not > target); 2.. breach. Warn needs
        // 2 bad of last 3 → window 3. Page needs 3-of-3 and 6 long bad →
        // window 7.
        assert_eq!(states[1], SloState::Ok, "a single bad window never moves the state");
        assert_eq!(states[2], SloState::Warn);
        assert_eq!(states[5], SloState::Warn, "5 bad windows: short condition met, long not yet");
        assert_eq!(states[6], SloState::Page);
        let trans: Vec<(SloState, SloState)> =
            t.transitions().iter().map(|&(_, _, f, to)| (f, to)).collect();
        assert_eq!(
            trans,
            vec![(SloState::Ok, SloState::Warn), (SloState::Warn, SloState::Page)],
            "ok → warn → page, in order"
        );
    }

    #[test]
    fn recovery_steps_page_down_to_ok() {
        let mut e = SloEvaluator::new(SloPolicy::target(100));
        for _ in 0..8 {
            e.evaluate(5_000);
        }
        assert_eq!(e.state(), SloState::Page);
        assert_eq!(e.evaluate(0), Some((SloState::Page, SloState::Warn)), "page condition lapsed");
        assert_eq!(e.evaluate(0), None, "one bad window still in the short view: warn holds");
        assert_eq!(e.evaluate(0), Some((SloState::Warn, SloState::Ok)), "short window clean");
        assert_eq!(e.breaches(), 8);
        assert_eq!(e.evaluations(), 11);
    }

    #[test]
    fn single_bad_window_never_flaps() {
        let mut e = SloEvaluator::new(SloPolicy::target(100));
        for k in 0..50u64 {
            // Isolated breaches, never two within a short window.
            let observed = if k % 5 == 0 { 10_000 } else { 0 };
            e.evaluate(observed);
            assert_eq!(e.state(), SloState::Ok, "window {k}");
        }
        assert_eq!(e.breaches(), 10);
    }

    #[test]
    fn evaluator_is_deterministic() {
        let run = || {
            let mut e = SloEvaluator::new(SloPolicy::target(500));
            let mut rng = super::tests_rng::TestRng::new(42);
            let mut log = Vec::new();
            for _ in 0..200 {
                e.evaluate(rng.next() % 2_000);
                log.push(e.state());
            }
            log
        };
        assert_eq!(run(), run(), "bit-identical across same-seed reruns");
    }

    #[test]
    fn json_capture_is_parseable_and_labeled() {
        let t = StalenessTracker::new(8);
        t.register_view("V0", &[0, 1]);
        t.set_slo(SloPolicy::target(1_000));
        t.set_cadence(1_000, 0);
        t.note_commit(0, 1, 10);
        t.note_refresh(&[(0, 1)], 400);
        t.maybe_sample(5_000);
        let j = t.to_json();
        let v = json::parse(&j).expect("tracker JSON parses");
        assert_eq!(v.get("windows").and_then(json::Value::as_num), Some(5.0));
        let v0 = v.get("views").and_then(|m| m.get("V0")).expect("view present");
        assert_eq!(v0.get("state").and_then(json::Value::as_str), Some("ok"));
        assert_eq!(v0.get("points").and_then(json::Value::as_arr).map(<[_]>::len), Some(5));
        assert!(t.render_text(5_000).contains("V0"));
    }
}

#[cfg(test)]
mod tests_rng {
    //! A tiny deterministic generator for the evaluator determinism test
    //! (`dyno-obs` depends on nothing, including the workspace PRNG crate).

    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }
}
