//! # dyno-obs — zero-dependency structured tracing and metrics
//!
//! The observability substrate for the Dyno reproduction: a self-contained
//! replacement for the `tracing` + `metrics` crates, built on nothing but
//! `std`, so the workspace stays buildable with no registry access.
//!
//! Three pieces:
//!
//! - [`Collector`] — the handle the whole stack carries around. Cheap to
//!   clone (one `Rc`), and its [`Default`]/[`Collector::disabled`] form is a
//!   **true no-op**: spans and events on a disabled collector neither
//!   allocate nor format anything, so instrumented hot paths (the Dyno
//!   detection loop, the simulation port) cost a branch when observability
//!   is off.
//! - [`metrics::Registry`] — monotonic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and log₂-bucketed [`metrics::Histogram`]s, with
//!   aligned-text and JSON snapshots. Handles are `Rc<Cell<_>>` behind the
//!   scenes: registering is a map lookup, updating is a `Cell` store.
//! - [`trace`] — structured records (spans with parent ids and key=value
//!   [`Field`]s, point events with levels) in a bounded ring buffer, with
//!   JSONL export. When the ring is full the oldest records are dropped and
//!   counted, never reallocated.
//!
//! Timestamps come from a pluggable [`Clock`]: the CLI uses [`WallClock`]
//! (wall micros since collector creation), the simulation stamps records in
//! **simulated microseconds** via [`VirtualClock`], which shares a cell with
//! `dyno-sim`'s virtual clock.
//!
//! On top of those sit the provenance pieces added for update forensics:
//!
//! - [`lineage`] — per-update causal history ([`Collector::prov`] /
//!   [`Collector::explain`]) in a bounded ring, same no-op contract as
//!   spans.
//! - [`chrome`] — a Chrome `trace_event` exporter
//!   ([`chrome::export_chrome`]) rendering spans, events, and lineage as a
//!   Perfetto-loadable timeline with flow arrows following each causal id.
//! - [`forensics`] — replays a lineage capture into per-phase latency
//!   breakdowns and per-anomaly-class histograms
//!   ([`forensics::analyze`]).
//! - [`profile`] — the per-operator maintenance-cost profiler (DESIGN.md
//!   §18): `EXPLAIN ANALYZE`-style plan trees recording rows in/out,
//!   weights cancelled, index probes, and nanoseconds per Z-set operator,
//!   off by default behind the same zero-cost gate as lineage.
//!
//! And the freshness layer (DESIGN.md §14):
//!
//! - [`timeseries`] — a [`Sampler`] snapshotting the registry on a window
//!   cadence into bounded ring-buffered series (counter deltas, gauge
//!   samples, per-window histogram quantiles);
//! - [`slo`] — per-view end-to-end staleness ([`StalenessTracker`]) under
//!   declarative targets with a multi-window burn-rate alert state machine
//!   (ok/warn/page).
//!
//! ```
//! use dyno_obs::{field, Collector, Level};
//!
//! let obs = Collector::wall().with_tracing(1024);
//! let steps = obs.counter("dyno.steps");
//! {
//!     let _span = obs.span("dyno.step", &[field("queue_depth", 3u64)]);
//!     steps.inc();
//!     obs.event(Level::Info, "dyno.fast_path", &[]);
//! }
//! assert_eq!(steps.get(), 1);
//! assert_eq!(obs.trace_records().len(), 3); // start, event, end
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod collector;
pub mod forensics;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use chrome::export_chrome;
pub use clock::{Clock, VirtualClock, WallClock};
pub use collector::{Collector, Span};
pub use lineage::{stage, Lineage, ProvRecord, BATCH_BIT};
pub use metrics::{Counter, Gauge, HistWindow, Histogram, Registry};
pub use profile::{NodeKey, OpAgg, OpPhase, OpSample, PlanProfile, Profile};
pub use slo::{SloEvaluator, SloPolicy, SloState, StalenessTracker};
pub use timeseries::{Sampler, SeriesKind};
pub use trace::{field, Field, FieldValue, Level, Record, RecordKind};
