//! The [`Collector`]: the one handle instrumented code carries.
//!
//! A collector is either **disabled** (the default — every call returns
//! immediately, no allocation, no formatting, no clock read) or **enabled**,
//! in which case it owns a [`Clock`], a metrics [`Registry`], and a
//! [`Tracer`] ring whose recording can be toggled at runtime.
//!
//! Spans are RAII: [`Collector::span`] returns a [`Span`] guard that closes
//! the span when dropped. Field slices are passed by reference and only
//! copied into the ring when tracing is actually on, so a call site like
//!
//! ```ignore
//! let _s = obs.span("dyno.step", &[field("depth", depth)]);
//! ```
//!
//! costs a branch and a few stack stores when tracing is off.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::clock::{Clock, VirtualClock, WallClock};
use crate::lineage::Lineage;
use crate::lineage::ProvRecord;
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::profile::{NodeKey, OpSample, Profile};
use crate::trace::{Field, Level, Record, Tracer};

/// Default ring capacity when tracing is enabled without an explicit size.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

struct CollectorInner {
    clock: Box<dyn Clock>,
    registry: Registry,
    tracing: Cell<bool>,
    tracer: RefCell<Tracer>,
    lineage_on: Cell<bool>,
    lineage: RefCell<Lineage>,
    profile_on: Cell<bool>,
    profile: RefCell<Profile>,
}

/// A cloneable handle to an observability pipeline (or to nothing).
#[derive(Clone, Default)]
pub struct Collector {
    inner: Option<Rc<CollectorInner>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Collector(disabled)"),
            Some(inner) => f
                .debug_struct("Collector")
                .field("tracing", &inner.tracing.get())
                .finish_non_exhaustive(),
        }
    }
}

impl Collector {
    /// The null collector: every operation is a no-op.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// An enabled collector on the given clock; metrics on, tracing off.
    pub fn new(clock: impl Clock + 'static) -> Self {
        Collector {
            inner: Some(Rc::new(CollectorInner {
                clock: Box::new(clock),
                registry: Registry::new(),
                tracing: Cell::new(false),
                tracer: RefCell::new(Tracer::new(DEFAULT_RING_CAPACITY)),
                lineage_on: Cell::new(false),
                lineage: RefCell::new(Lineage::new(0)),
                profile_on: Cell::new(false),
                profile: RefCell::new(Profile::default()),
            })),
        }
    }

    /// An enabled collector stamped with wall time.
    pub fn wall() -> Self {
        Self::new(WallClock::new())
    }

    /// An enabled collector stamped with simulated time from `clock`.
    pub fn with_virtual_clock(clock: VirtualClock) -> Self {
        Self::new(clock)
    }

    /// Turns tracing on with a ring of `capacity` records. No-op when
    /// disabled.
    pub fn with_tracing(self, capacity: usize) -> Self {
        if let Some(inner) = &self.inner {
            *inner.tracer.borrow_mut() = Tracer::new(capacity);
            inner.tracing.set(true);
        }
        self
    }

    /// Turns provenance capture on with a [`Lineage`] store of `capacity`
    /// records. No-op when disabled.
    pub fn with_lineage(self, capacity: usize) -> Self {
        if let Some(inner) = &self.inner {
            *inner.lineage.borrow_mut() = Lineage::new(capacity);
            inner.lineage_on.set(true);
        }
        self
    }

    /// Turns the per-operator profiler on (the store keeps its default
    /// caps). No-op when disabled.
    pub fn with_profile(self) -> Self {
        if let Some(inner) = &self.inner {
            inner.profile_on.set(true);
        }
        self
    }

    /// Whether this is an enabled collector (metrics are live).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether trace records are currently being captured.
    pub fn tracing_on(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.tracing.get())
    }

    /// Toggles trace capture (the ring is kept). No-op when disabled.
    pub fn set_tracing(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.tracing.set(on);
        }
    }

    /// Whether provenance records are currently being captured.
    pub fn lineage_on(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.lineage_on.get())
    }

    /// Toggles provenance capture (the store is kept). No-op when disabled.
    pub fn set_lineage(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.lineage_on.set(on);
        }
    }

    /// Whether per-operator profiling is currently on. Instrumented call
    /// sites check this **before** reading any clock or sizing any bag, so
    /// the disabled path is one `Option` deref plus one `Cell` read.
    #[inline]
    pub fn profile_on(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.profile_on.get())
    }

    /// Toggles per-operator profiling (the store is kept). No-op when
    /// disabled.
    pub fn set_profile(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.profile_on.set(on);
        }
    }

    /// Records one operator sample under the `(view, scope)` plan. True
    /// no-op when the collector is disabled or profiling is off — though
    /// call sites should gate on [`Collector::profile_on`] first so the
    /// `key` and `sample` are never even built.
    #[inline]
    pub fn profile_op(&self, view: &str, scope: &str, key: NodeKey, sample: OpSample) {
        let Some(inner) = &self.inner else { return };
        if !inner.profile_on.get() {
            return;
        }
        inner.profile.borrow_mut().record(view, scope, key, sample);
    }

    /// Counts one invocation of the `(view, scope)` plan. Gated like
    /// [`Collector::profile_op`].
    #[inline]
    pub fn profile_invocation(&self, view: &str, scope: &str) {
        let Some(inner) = &self.inner else { return };
        if !inner.profile_on.get() {
            return;
        }
        inner.profile.borrow_mut().invocation(view, scope);
    }

    /// The profile as an `EXPLAIN ANALYZE`-style text tree, optionally
    /// restricted to one view. Empty-store hint when nothing was captured.
    pub fn profile_text(&self, view: Option<&str>) -> String {
        match &self.inner {
            Some(inner) => inner.profile.borrow().render_text(view),
            None => String::from("no profile captured (is the profiler on?)\n"),
        }
    }

    /// The profile as one JSON document (`{}`-shaped empty when disabled).
    pub fn profile_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.profile.borrow().render_json(),
            None => Profile::default().render_json(),
        }
    }

    /// A clone of the profile store (empty when disabled).
    pub fn profile_snapshot(&self) -> Profile {
        match &self.inner {
            Some(inner) => inner.profile.borrow().clone(),
            None => Profile::default(),
        }
    }

    /// Empties the profile store.
    pub fn clear_profile(&self) {
        if let Some(inner) = &self.inner {
            inner.profile.borrow_mut().clear();
        }
    }

    /// Clock reading, in microseconds; 0 when disabled.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.now_us(),
            None => 0,
        }
    }

    /// The shared metrics registry. A disabled collector hands out a fresh
    /// detached registry: writes to it are cheap and invisible.
    pub fn registry(&self) -> Registry {
        match &self.inner {
            Some(inner) => inner.registry.clone(),
            None => Registry::new(),
        }
    }

    /// Counter `name` (detached and invisible when disabled).
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Gauge `name` (detached and invisible when disabled).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Histogram `name` (detached and invisible when disabled).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::default(),
        }
    }

    /// Opens a span. The guard closes it on drop. When the collector is
    /// disabled or tracing is off this returns an inert guard without
    /// copying `fields` or reading the clock.
    #[inline]
    pub fn span(&self, name: &'static str, fields: &[Field]) -> Span {
        let Some(inner) = &self.inner else {
            return Span { active: None };
        };
        if !inner.tracing.get() {
            return Span { active: None };
        }
        let ts = inner.clock.now_us();
        let id = inner.tracer.borrow_mut().begin_span(name, ts, fields.to_vec());
        Span { active: Some(SpanActive { inner: Rc::clone(inner), name, id, start_us: ts }) }
    }

    /// Records a point event. No-op (no copy, no clock read) when tracing
    /// is off.
    #[inline]
    pub fn event(&self, level: Level, name: &'static str, fields: &[Field]) {
        let Some(inner) = &self.inner else { return };
        if !inner.tracing.get() {
            return;
        }
        let ts = inner.clock.now_us();
        inner.tracer.borrow_mut().event(level, name, ts, fields.to_vec());
    }

    /// [`Collector::event`] at [`Level::Warn`].
    pub fn warn(&self, name: &'static str, fields: &[Field]) {
        self.event(Level::Warn, name, fields);
    }

    /// Records a provenance record for causal id `id` at `stage`. True
    /// no-op (no copy, no clock read, no allocation) when the collector is
    /// disabled or lineage capture is off.
    #[inline]
    pub fn prov(&self, id: u64, stage: &'static str, fields: &[Field]) {
        let Some(inner) = &self.inner else { return };
        if !inner.lineage_on.get() {
            return;
        }
        let ts = inner.clock.now_us();
        inner.lineage.borrow_mut().record(ts, id, stage, fields.to_vec());
    }

    /// Registers a batch over `members` and records one provenance record
    /// against the batch id at `stage`; the record additionally carries one
    /// `member` field per causal id so exporters can expand it without the
    /// side map. Returns the batch id, or 0 when capture is off.
    pub fn prov_batch(&self, members: &[u64], stage: &'static str, fields: &[Field]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        if !inner.lineage_on.get() {
            return 0;
        }
        let ts = inner.clock.now_us();
        let mut lineage = inner.lineage.borrow_mut();
        let id = lineage.new_batch(members);
        let mut all: Vec<Field> = Vec::with_capacity(fields.len() + members.len());
        all.extend_from_slice(fields);
        for &m in members {
            all.push(("member", m.into()));
        }
        lineage.record(ts, id, stage, all);
        id
    }

    /// The lineage of `id` (its own records plus batch traversal), oldest
    /// first. Empty when disabled.
    pub fn explain(&self, id: u64) -> Vec<ProvRecord> {
        match &self.inner {
            Some(inner) => inner.lineage.borrow().explain(id),
            None => Vec::new(),
        }
    }

    /// Snapshot of the lineage store, oldest first. Empty when disabled.
    pub fn lineage_records(&self) -> Vec<ProvRecord> {
        match &self.inner {
            Some(inner) => inner.lineage.borrow().records().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Provenance records evicted from the store so far.
    pub fn lineage_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.lineage.borrow().dropped())
    }

    /// The lineage store as JSONL, oldest record first. Empty when
    /// disabled. Byte-stable for identical runs, so same-seed determinism
    /// tests can compare captures as strings.
    pub fn lineage_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner.lineage.borrow().export_jsonl(),
            None => String::new(),
        }
    }

    /// Empties the lineage store.
    pub fn clear_lineage(&self) {
        if let Some(inner) = &self.inner {
            inner.lineage.borrow_mut().clear();
        }
    }

    /// Snapshot of the trace ring, oldest first. Empty when disabled.
    pub fn trace_records(&self) -> Vec<Record> {
        match &self.inner {
            Some(inner) => inner.tracer.borrow().records().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Records evicted from the ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.tracer.borrow().dropped())
    }

    /// The trace ring as JSONL, oldest record first. Empty when disabled.
    pub fn trace_jsonl(&self) -> String {
        match &self.inner {
            Some(inner) => inner.tracer.borrow().export_jsonl(),
            None => String::new(),
        }
    }

    /// Empties the trace ring.
    pub fn clear_trace(&self) {
        if let Some(inner) = &self.inner {
            inner.tracer.borrow_mut().clear();
        }
    }

    /// Aligned-text metrics snapshot (empty when disabled).
    pub fn metrics_text(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.snapshot_text(),
            None => String::new(),
        }
    }

    /// JSON metrics snapshot (`{}` when disabled).
    pub fn metrics_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.snapshot_json(),
            None => String::from("{}"),
        }
    }
}

struct SpanActive {
    inner: Rc<CollectorInner>,
    name: &'static str,
    id: u64,
    start_us: u64,
}

/// RAII guard for an open span; closes it (recording duration) on drop.
pub struct Span {
    active: Option<SpanActive>,
}

impl Span {
    /// The span id, or 0 for an inert guard.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let ts = a.inner.clock.now_us();
            a.inner.tracer.borrow_mut().end_span(a.name, a.id, a.start_us, ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{field, RecordKind};

    #[test]
    fn disabled_collector_is_a_no_op() {
        let obs = Collector::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.tracing_on());
        // Spans and events vanish; guards are inert.
        let s = obs.span("x", &[field("k", 1u64)]);
        assert_eq!(s.id(), 0);
        drop(s);
        obs.event(Level::Warn, "y", &[]);
        assert!(obs.trace_records().is_empty());
        assert_eq!(obs.trace_jsonl(), "");
        assert_eq!(obs.metrics_json(), "{}");
        // Metric handles work but are invisible.
        let c = obs.counter("c");
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(obs.registry().counter_value("c"), None);
    }

    #[test]
    fn disabled_span_does_not_copy_fields() {
        // A disabled collector must not read fields at all; passing a slice
        // borrowed from a value we immediately mutate would be a compile
        // error if the guard held it. Behaviourally, we check no records
        // appear and the guard is inert even when nested.
        let obs = Collector::disabled();
        {
            let _a = obs.span("outer", &[]);
            let _b = obs.span("inner", &[]);
        }
        assert!(obs.trace_records().is_empty());
    }

    #[test]
    fn enabled_without_tracing_records_metrics_only() {
        let obs = Collector::wall();
        obs.counter("hits").add(2);
        let _s = obs.span("ignored", &[]);
        obs.event(Level::Info, "ignored", &[]);
        assert_eq!(obs.registry().counter_value("hits"), Some(2));
        assert!(obs.trace_records().is_empty());
    }

    #[test]
    fn spans_nest_with_parent_ids_through_the_guard_api() {
        let clock = VirtualClock::new();
        let obs = Collector::with_virtual_clock(clock.clone()).with_tracing(64);
        clock.set(100);
        {
            let outer = obs.span("outer", &[]);
            clock.set(150);
            {
                let inner = obs.span("inner", &[field("n", 3u64)]);
                assert_ne!(inner.id(), outer.id());
                obs.event(Level::Info, "tick", &[]);
                clock.set(180);
            }
            clock.set(200);
        }
        let recs = obs.trace_records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[0].ts_us, 100);
        assert_eq!(recs[1].parent_id, recs[0].span_id);
        assert_eq!(recs[2].span_id, recs[1].span_id); // event inside inner
        assert_eq!(recs[3].dur_us, Some(30)); // inner: 150→180
        assert_eq!(recs[4].dur_us, Some(100)); // outer: 100→200
    }

    #[test]
    fn set_tracing_toggles_capture() {
        let obs = Collector::wall().with_tracing(16);
        obs.event(Level::Info, "a", &[]);
        obs.set_tracing(false);
        obs.event(Level::Info, "b", &[]);
        obs.set_tracing(true);
        obs.event(Level::Info, "c", &[]);
        let names: Vec<&str> = obs.trace_records().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn disabled_or_off_lineage_is_a_no_op() {
        let off = Collector::disabled();
        off.prov(1, crate::lineage::stage::COMMIT, &[field("k", 1u64)]);
        assert_eq!(off.prov_batch(&[1, 2], crate::lineage::stage::MERGE, &[]), 0);
        assert!(off.lineage_records().is_empty());
        assert!(off.explain(1).is_empty());
        assert_eq!(off.lineage_jsonl(), "");

        // Enabled but lineage never turned on: same behaviour.
        let obs = Collector::wall();
        assert!(!obs.lineage_on());
        obs.prov(1, crate::lineage::stage::COMMIT, &[]);
        assert!(obs.lineage_records().is_empty());
    }

    #[test]
    fn lineage_captures_and_toggles() {
        let clock = VirtualClock::new();
        let obs = Collector::with_virtual_clock(clock.clone()).with_lineage(16);
        clock.set(40);
        obs.prov(7, crate::lineage::stage::ADMIT, &[field("source", 2u64)]);
        obs.set_lineage(false);
        obs.prov(7, crate::lineage::stage::INTENT, &[]);
        obs.set_lineage(true);
        let b = obs.prov_batch(&[7, 9], crate::lineage::stage::MERGE, &[]);
        assert_ne!(b, 0);
        let recs = obs.lineage_records();
        let stages: Vec<&str> = recs.iter().map(|r| r.stage).collect();
        assert_eq!(stages, vec!["admit", "merge"], "record while off is dropped");
        assert_eq!(recs[0].ts_us, 40);
        // The batch record carries its members as fields and explain()
        // reaches it from a member id.
        assert_eq!(obs.explain(9).len(), 1);
        assert_eq!(obs.explain(7).len(), 2);
        obs.clear_lineage();
        assert!(obs.lineage_records().is_empty());
    }

    #[test]
    fn profile_gate_toggles_and_records() {
        use crate::profile::{NodeKey, OpPhase, OpSample};
        let key =
            || NodeKey { step: 0, phase: OpPhase::Seed, op: "delta_select", detail: "R".into() };
        let s = OpSample { rows_in: 3, rows_out: 2, ..Default::default() };

        let off = Collector::disabled();
        assert!(!off.profile_on());
        off.profile_op("V", "R", key(), s);
        assert!(off.profile_snapshot().is_empty());
        assert!(off.profile_text(None).contains("no profile captured"));

        let obs = Collector::wall();
        assert!(!obs.profile_on(), "profiling is off by default");
        obs.profile_op("V", "R", key(), s);
        assert!(obs.profile_snapshot().is_empty(), "samples while off are dropped");

        obs.set_profile(true);
        obs.profile_invocation("V", "R");
        obs.profile_op("V", "R", key(), s);
        let snap = obs.profile_snapshot();
        assert_eq!(snap.plan("V", "R").unwrap().invocations, 1);
        assert!(obs.profile_text(Some("V")).contains("delta_select R"));
        crate::json::parse(&obs.profile_json()).expect("valid JSON");

        obs.set_profile(false);
        obs.profile_op("V", "R", key(), s);
        assert_eq!(
            obs.profile_snapshot().plan("V", "R").unwrap().nodes.values().next().unwrap().calls,
            1,
            "the store is kept but records while off are dropped"
        );
        obs.clear_profile();
        assert!(obs.profile_snapshot().is_empty());
    }

    #[test]
    fn with_profile_builder_flips_the_gate() {
        assert!(Collector::wall().with_profile().profile_on());
        assert!(!Collector::disabled().with_profile().profile_on());
    }

    #[test]
    fn clones_share_the_pipeline() {
        let obs = Collector::wall().with_tracing(16);
        let other = obs.clone();
        other.counter("n").inc();
        other.event(Level::Info, "e", &[]);
        assert_eq!(obs.registry().counter_value("n"), Some(1));
        assert_eq!(obs.trace_records().len(), 1);
    }
}
