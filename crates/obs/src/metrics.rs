//! Metrics: monotonic counters, gauges, and log₂-bucketed histograms.
//!
//! A [`Registry`] maps static names to shared handles. Handles are
//! `Rc<Cell<_>>` (histograms: `Rc<RefCell<_>>`): registering is a one-time
//! map lookup, updating is a plain store — cheap enough to leave on
//! unconditionally, which is why `dyno-sim`'s `Metrics` can be a pure
//! projection of a registry without a measurable cost.
//!
//! Everything is single-threaded by design (the whole reproduction is);
//! clones of a handle share the same cell.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::json;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.set(self.0.get() + d);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maps a value to its bucket: 0 → bucket 0; otherwise bucket `k` holds
/// values in `[2^(k-1), 2^k)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (see [`bucket_index`]).
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        k => 1u64 << (k - 1),
    }
}

/// One observation window's summary of a [`Histogram`], as produced by
/// [`Histogram::snapshot_and_reset_window`]. All values concern only the
/// samples recorded since the previous window snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistWindow {
    /// Samples recorded in the window.
    pub count: u64,
    /// Sum of the window's samples.
    pub sum: u64,
    /// Smallest sample in the window (0 if empty).
    pub min: u64,
    /// Largest sample in the window (0 if empty).
    pub max: u64,
    /// Estimated median of the window's samples.
    pub p50: u64,
    /// Estimated 95th percentile of the window's samples.
    pub p95: u64,
    /// Estimated 99th percentile of the window's samples.
    pub p99: u64,
}

/// Rank-based quantile over a log₂ bucket array: the quantile's bucket is
/// found by rank, then the value is linearly interpolated across the
/// bucket's range, clamped to the observed `min`/`max`. Shared by the
/// cumulative and windowed views of a histogram so both report identically
/// for identical sample sets.
fn quantile_in(count: u64, min: u64, max: u64, buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cum + n >= rank {
            let bucket_hi = match i {
                0 => 0,
                64 => u64::MAX,
                k => (1u64 << k) - 1,
            };
            let lo = bucket_lo(i).max(min).min(max);
            let hi = bucket_hi.min(max).max(lo);
            let within = rank - cum; // 1 ..= n
            let frac = if n <= 1 { 0.5 } else { (within - 1) as f64 / (n - 1) as f64 };
            return lo + ((hi - lo) as f64 * frac).round() as u64;
        }
        cum += n;
    }
    max
}

#[derive(Debug)]
struct HistData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Window-scoped mirror of the fields above: reset by
    /// `snapshot_and_reset_window`, never consulted by the cumulative
    /// accessors, so lifetime quantiles are unaffected by windowing.
    wcount: u64,
    wsum: u64,
    wmin: u64,
    wmax: u64,
    wbuckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
            wcount: 0,
            wsum: 0,
            wmin: 0,
            wmax: 0,
            wbuckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically microseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistData>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        if h.count == 0 || v < h.min {
            h.min = v;
        }
        if v > h.max {
            h.max = v;
        }
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
        h.buckets[bucket_index(v)] += 1;
        if h.wcount == 0 || v < h.wmin {
            h.wmin = v;
        }
        if v > h.wmax {
            h.wmax = v;
        }
        h.wcount += 1;
        h.wsum = h.wsum.wrapping_add(v);
        h.wbuckets[bucket_index(v)] += 1;
    }

    /// Summarizes the samples recorded since the last call (or since
    /// creation) and resets the window, leaving the cumulative state — and
    /// therefore [`Histogram::quantile`] / [`Histogram::percentiles`] —
    /// untouched. This is what lets `stats` and figure output keep lifetime
    /// percentiles while the time-series sampler reads per-window ones off
    /// the same histogram.
    pub fn snapshot_and_reset_window(&self) -> HistWindow {
        let mut h = self.0.borrow_mut();
        let w = HistWindow {
            count: h.wcount,
            sum: h.wsum,
            min: h.wmin,
            max: h.wmax,
            p50: quantile_in(h.wcount, h.wmin, h.wmax, &h.wbuckets, 0.50),
            p95: quantile_in(h.wcount, h.wmin, h.wmax, &h.wbuckets, 0.95),
            p99: quantile_in(h.wcount, h.wmin, h.wmax, &h.wbuckets, 0.99),
        };
        h.wcount = 0;
        h.wsum = 0;
        h.wmin = 0;
        h.wmax = 0;
        h.wbuckets = [0; HISTOGRAM_BUCKETS];
        w
    }

    /// Samples recorded in the current (un-snapshotted) window.
    pub fn window_count(&self) -> u64 {
        self.0.borrow().wcount
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.0.borrow().min
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.borrow().max
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.0.borrow().buckets[i]
    }

    /// `(bucket lower bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let h = self.0.borrow();
        (0..HISTOGRAM_BUCKETS)
            .filter(|&i| h.buckets[i] != 0)
            .map(|i| (bucket_lo(i), h.buckets[i]))
            .collect()
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) of the recorded samples.
    ///
    /// Exact to the resolution of the log₂ buckets: the quantile's bucket is
    /// found by rank, then the value is linearly interpolated across the
    /// bucket's range (clamped to the observed `min`/`max`, so single-bucket
    /// distributions report exact values). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let h = self.0.borrow();
        quantile_in(h.count, h.min, h.max, &h.buckets, q)
    }

    /// The `(p50, p95, p99)` estimates (see [`Histogram::quantile`]).
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A named collection of metrics. Clones share the same underlying maps.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at 0 on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner.borrow_mut().counters.entry(name).or_default().clone()
    }

    /// The gauge named `name`, registering it at 0 on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.inner.borrow_mut().gauges.entry(name).or_default().clone()
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner.borrow_mut().histograms.entry(name).or_default().clone()
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.borrow().counters.get(name).map(Counter::get)
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.inner.borrow().gauges.get(name).map(Gauge::get)
    }

    /// `(name, value)` for every registered counter, name order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.borrow().counters.iter().map(|(n, c)| (*n, c.get())).collect()
    }

    /// `(name, value)` for every registered gauge, name order.
    pub fn gauges(&self) -> Vec<(&'static str, i64)> {
        self.inner.borrow().gauges.iter().map(|(n, g)| (*n, g.get())).collect()
    }

    /// `(name, handle)` for every registered histogram, name order. The
    /// handles share state with the registry, so the time-series sampler can
    /// take per-window snapshots without holding the registry borrowed.
    pub fn histograms(&self) -> Vec<(&'static str, Histogram)> {
        self.inner.borrow().histograms.iter().map(|(n, h)| (*n, h.clone())).collect()
    }

    /// An aligned, human-readable snapshot of every registered metric.
    pub fn snapshot_text(&self) -> String {
        let inner = self.inner.borrow();
        let width = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str("counters\n");
            for (name, c) in &inner.counters {
                let _ = writeln!(out, "  {name:<width$}  {}", c.get());
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, g) in &inner.gauges {
                let _ = writeln!(out, "  {name:<width$}  {}", g.get());
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms\n");
            for (name, h) in &inner.histograms {
                let (p50, p95, p99) = h.percentiles();
                let _ = write!(
                    out,
                    "  {name:<width$}  count={} sum={} min={} max={} p50={p50} p95={p95} p99={p99}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                );
                for (lo, n) in h.nonzero_buckets() {
                    let _ = write!(out, " [{lo}+]={n}");
                }
                out.push('\n');
            }
        }
        out
    }

    /// The snapshot as a single JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,p50,p95,p99,buckets:[[lo,n],..]}}}`.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            let _ = write!(out, ":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            let _ = write!(out, ":{}", g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            let (p50, p95, p99) = h.percentiles();
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
            for (j, (lo, n)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("x"), Some(3));

        let g = r.gauge("depth");
        g.set(5);
        r.gauge("depth").add(-2);
        assert_eq!(r.gauge_value("depth"), Some(3));
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 is exactly zero; bucket k covers [2^(k-1), 2^k).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Lower bounds invert the mapping at each boundary.
        for k in 1..HISTOGRAM_BUCKETS {
            let lo = bucket_lo(k);
            assert_eq!(bucket_index(lo), k);
            assert_eq!(bucket_index(lo - 1), k - 1, "lo={lo}");
        }
    }

    #[test]
    fn histogram_accumulates() {
        let r = Registry::new();
        let h = r.histogram("us");
        for v in [0, 1, 1, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1005);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 2); // the ones
        assert_eq!(h.bucket(2), 1); // 3 ∈ [2,4)
        assert_eq!(h.bucket(10), 1); // 1000 ∈ [512,1024)
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (512, 1)]);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat");
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 100 samples 1..=100: log₂ buckets blur values, but the estimates
        // must stay within the containing bucket and be monotone in q.
        for v in 1..=100u64 {
            h.record(v);
        }
        let (p50, p95, p99) = h.percentiles();
        assert!((32..=63).contains(&p50), "p50={p50} must land in the [32,64) bucket");
        assert!((64..=100).contains(&p95), "p95={p95} clamped by max");
        assert!((64..=100).contains(&p99), "p99={p99} clamped by max");
        assert!(p50 <= p95 && p95 <= p99, "monotone in q");
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to min");
        assert_eq!(h.quantile(1.0), 100, "q=1 clamps to max");
    }

    #[test]
    fn window_reset_leaves_cumulative_quantiles_untouched() {
        // Regression (ISSUE 6 satellite): the same histogram must serve both
        // the lifetime view (stats / figure output) and per-window snapshots
        // (time series) without either disturbing the other.
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let lifetime_before = h.percentiles();
        let w1 = h.snapshot_and_reset_window();
        assert_eq!(w1.count, 100);
        assert_eq!(w1.sum, 5050);
        assert_eq!((w1.min, w1.max), (1, 100));
        assert_eq!((w1.p50, w1.p95, w1.p99), lifetime_before, "same samples, same estimates");
        assert_eq!(h.percentiles(), lifetime_before, "cumulative view survives the reset");
        assert_eq!(h.count(), 100, "cumulative count survives");
        assert_eq!(h.window_count(), 0, "window is reset");

        // A second window sees only its own (much larger) samples; the
        // cumulative view blends both epochs.
        for v in 10_000..10_050u64 {
            h.record(v);
        }
        let w2 = h.snapshot_and_reset_window();
        assert_eq!(w2.count, 50);
        assert!(w2.min >= 10_000, "window min is window-scoped, got {}", w2.min);
        assert!(w2.p50 >= 10_000, "window quantiles see only window samples");
        assert_eq!(h.count(), 150);
        assert_eq!(h.min(), 1, "cumulative min spans both windows");
        assert!(h.quantile(0.5) < 10_000, "cumulative median still dominated by epoch one");

        // An empty window snapshots as all zeros.
        let w3 = h.snapshot_and_reset_window();
        assert_eq!(w3, HistWindow::default());
    }

    #[test]
    fn quantile_of_single_sample_is_exact() {
        let h = Histogram::default();
        h.record(777);
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.quantile(0.99), 777);
    }

    #[test]
    fn snapshots_render_all_metric_kinds() {
        let r = Registry::new();
        r.counter("a.count").add(7);
        r.gauge("b.depth").set(-2);
        r.histogram("c.us").record(5);
        let text = r.snapshot_text();
        assert!(text.contains("a.count"));
        assert!(text.contains('7'));
        assert!(text.contains("-2"));
        assert!(text.contains("count=1"));
        assert!(text.contains("p50=5"), "quantiles in the text snapshot: {text}");
        let json = r.snapshot_json();
        assert!(json.contains("\"a.count\":7"));
        assert!(json.contains("\"b.depth\":-2"));
        assert!(json.contains("\"p50\":5"), "quantiles in the JSON snapshot");
        assert!(json.contains("\"buckets\":[[4,1]]"));
    }
}
