//! Chrome `trace_event` JSON export — load the result in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The exporter combines the two capture streams of a [`Collector`]
//! (crate::Collector):
//!
//! * **spans** become duration (`"B"`/`"E"`) events. Only *matched*
//!   start/end pairs are emitted, so the output always balances even when
//!   the ring evicted one half of a pair or a span is still open;
//! * **events** become instant (`"i"`) events;
//! * **provenance records** become 1 µs complete (`"X"`) slices named
//!   `prov.<stage>`, and every causal id's trajectory across lanes is tied
//!   together with **flow events** (`"s"` → `"t"` → `"f"`), which Perfetto
//!   renders as arrows from the source commit to the view-extent delta.
//!
//! Everything runs in one process, so the export uses a single `pid` with
//! one **lane** (`tid`) per subsystem: each source wrapper, the transport,
//! the scheduler (Dyno core), and the warehouse. Lanes are named via
//! `thread_name` metadata events.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;
use crate::lineage::{stage, ProvRecord, BATCH_BIT};
use crate::trace::{FieldValue, Record, RecordKind};

/// The single process id used by the export.
const PID: u32 = 1;

/// Lane ids. Sources occupy `SOURCE_BASE + source_id`.
const LANE_SCHEDULER: u32 = 1;
const LANE_TRANSPORT: u32 = 2;
const LANE_WAREHOUSE: u32 = 3;
const SOURCE_BASE: u32 = 10;

/// The lane a span/event name belongs to, by subsystem prefix.
fn lane_of_name(name: &str) -> u32 {
    if name.starts_with("dyno.") || name.starts_with("graph.") || name.starts_with("correct.") {
        LANE_SCHEDULER
    } else if name.starts_with("fault.") || name.starts_with("xport.") {
        LANE_TRANSPORT
    } else {
        // view.*, vm.*, wal.*, sim.*, plan.*, …: the warehouse side.
        LANE_WAREHOUSE
    }
}

/// The lane a provenance record belongs to: commits land on their source's
/// lane, transport stages on the transport lane, scheduling stages on the
/// scheduler lane, everything else on the warehouse lane.
fn lane_of_prov(rec: &ProvRecord) -> u32 {
    match rec.stage {
        stage::COMMIT => {
            let source = rec.fields.iter().find_map(|(k, v)| match (k, v) {
                (&"source", FieldValue::U64(n)) => Some(*n as u32),
                _ => None,
            });
            SOURCE_BASE + source.unwrap_or(0)
        }
        s if s.starts_with("xport.") => LANE_TRANSPORT,
        stage::CONFLICT | stage::MERGE | stage::REORDER => LANE_SCHEDULER,
        _ => LANE_WAREHOUSE,
    }
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::Str(s) => json::push_str(out, s),
        FieldValue::Text(s) => json::push_str(out, s),
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) => json::push_f64(out, *x),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_args(out: &mut String, extra: &[(&str, u64)], fields: &[(&'static str, FieldValue)]) {
    out.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in extra {
        if !first {
            out.push(',');
        }
        first = false;
        json::push_str(out, k);
        let _ = write!(out, ":{v}");
    }
    for (k, v) in fields {
        if !first {
            out.push(',');
        }
        first = false;
        json::push_str(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

fn push_event_head(out: &mut String, name: &str, ph: char, ts: u64, tid: u32) {
    out.push_str("{\"name\":");
    json::push_str(out, name);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}");
}

/// Exports trace + lineage as one Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`).
pub fn export_chrome(records: &[Record], lineage: &[ProvRecord]) -> String {
    let mut events: Vec<String> = Vec::new();

    // Which span starts have a matching end (same span_id) in the capture.
    let mut start_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut matched: BTreeMap<u64, ()> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        match r.kind {
            RecordKind::SpanStart => {
                start_of.insert(r.span_id, i);
            }
            RecordKind::SpanEnd => {
                if start_of.contains_key(&r.span_id) {
                    matched.insert(r.span_id, ());
                }
            }
            RecordKind::Event => {}
        }
    }

    let mut lanes: BTreeMap<u32, String> = BTreeMap::new();
    let lane = |tid: u32, lanes: &mut BTreeMap<u32, String>| {
        lanes.entry(tid).or_insert_with(|| match tid {
            LANE_SCHEDULER => "scheduler".into(),
            LANE_TRANSPORT => "transport".into(),
            LANE_WAREHOUSE => "warehouse".into(),
            t => format!("source.DS{}", t - SOURCE_BASE),
        });
        tid
    };

    // Spans and point events, in capture order (the tracer is
    // single-threaded, so capture order is timestamp order and B/E nesting
    // per lane is inherited from the span stack).
    for r in records {
        let tid = lane(lane_of_name(r.name), &mut lanes);
        let mut e = String::new();
        match r.kind {
            RecordKind::SpanStart if matched.contains_key(&r.span_id) => {
                push_event_head(&mut e, r.name, 'B', r.ts_us, tid);
                if !r.fields.is_empty() {
                    push_args(&mut e, &[], &r.fields);
                }
            }
            RecordKind::SpanEnd if matched.contains_key(&r.span_id) => {
                push_event_head(&mut e, r.name, 'E', r.ts_us, tid);
            }
            RecordKind::Event => {
                push_event_head(&mut e, r.name, 'i', r.ts_us, tid);
                e.push_str(",\"s\":\"t\"");
                if !r.fields.is_empty() {
                    push_args(&mut e, &[], &r.fields);
                }
            }
            _ => continue, // unmatched half of a pair
        }
        e.push('}');
        events.push(e);
    }

    // Provenance records as 1 µs slices, with causal-id appearances
    // collected for the flow pass. A batch record is an appearance of every
    // member id.
    let mut trajectories: BTreeMap<u64, Vec<(u64, u32, &'static str)>> = BTreeMap::new();
    for r in lineage {
        let tid = lane(lane_of_prov(r), &mut lanes);
        let mut e = String::new();
        let name = format!("prov.{}", r.stage);
        e.push_str("{\"name\":");
        json::push_str(&mut e, &name);
        let _ = write!(e, ",\"ph\":\"X\",\"ts\":{},\"dur\":1,\"pid\":{PID},\"tid\":{tid}", r.ts_us);
        push_args(&mut e, &[("causal_id", r.id)], &r.fields);
        e.push('}');
        events.push(e);

        if r.id & BATCH_BIT != 0 {
            for (k, v) in &r.fields {
                if *k == "member" {
                    if let FieldValue::U64(m) = v {
                        trajectories.entry(*m).or_default().push((r.ts_us, tid, r.stage));
                    }
                }
            }
        } else {
            trajectories.entry(r.id).or_default().push((r.ts_us, tid, r.stage));
        }
    }

    // Flow arrows: one flow per causal id, stepping through every lane the
    // id appeared on. `s` opens the flow, `t` continues it, `f` closes it.
    for (id, hops) in &trajectories {
        if hops.len() < 2 {
            continue;
        }
        let last = hops.len() - 1;
        for (i, (ts, tid, stg)) in hops.iter().enumerate() {
            let ph = if i == 0 {
                's'
            } else if i == last {
                'f'
            } else {
                't'
            };
            let mut e = String::new();
            e.push_str("{\"name\":\"causal\",\"cat\":\"provenance\",");
            let _ =
                write!(e, "\"ph\":\"{ph}\",\"id\":{id},\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}");
            if ph == 'f' {
                e.push_str(",\"bp\":\"e\"");
            }
            let _ = write!(e, ",\"args\":{{\"stage\":{}}}", json::escape(stg));
            e.push('}');
            events.push(e);
        }
    }

    // Lane names (metadata events, conventionally first).
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in &lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json::escape(name)
        );
    }
    for e in &events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(e);
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::lineage::Lineage;
    use crate::trace::{field, Level, Tracer};

    fn events_of(doc: &str) -> Vec<Value> {
        let v = parse(doc).expect("valid JSON");
        v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array").to_vec()
    }

    #[test]
    fn spans_export_as_balanced_be_pairs() {
        let mut t = Tracer::new(64);
        let a = t.begin_span("dyno.step", 10, vec![field("depth", 2u64)]);
        let b = t.begin_span("vm.sweep", 20, vec![]);
        t.end_span("vm.sweep", b, 20, 30);
        t.end_span("dyno.step", a, 10, 40);
        let open = t.begin_span("view.maintain", 50, vec![]); // never closed
        let _ = open;

        let recs: Vec<Record> = t.records().cloned().collect();
        let doc = export_chrome(&recs, &[]);
        let evs = events_of(&doc);
        let mut b_count = 0;
        let mut e_count = 0;
        for ev in &evs {
            match ev.get("ph").and_then(Value::as_str) {
                Some("B") => b_count += 1,
                Some("E") => e_count += 1,
                _ => {}
            }
        }
        assert_eq!(b_count, 2, "the open span is not exported");
        assert_eq!(e_count, 2);
    }

    #[test]
    fn lanes_split_by_subsystem_and_are_named() {
        let mut t = Tracer::new(64);
        let a = t.begin_span("dyno.step", 1, vec![]);
        t.end_span("dyno.step", a, 1, 2);
        let b = t.begin_span("view.maintain", 3, vec![]);
        t.end_span("view.maintain", b, 3, 4);
        let recs: Vec<Record> = t.records().cloned().collect();

        let mut l = Lineage::new(8);
        l.record(0, 7, stage::COMMIT, vec![field("source", 2u64)]);
        let prov: Vec<ProvRecord> = l.records().cloned().collect();

        let doc = export_chrome(&recs, &prov);
        let evs = events_of(&doc);
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"scheduler"));
        assert!(names.contains(&"warehouse"));
        assert!(names.contains(&"source.DS2"));
    }

    #[test]
    fn flows_connect_a_causal_id_across_lanes() {
        let mut l = Lineage::new(16);
        l.record(10, 7, stage::COMMIT, vec![field("source", 0u64)]);
        l.record(20, 7, stage::ADMIT, vec![]);
        l.record(30, 7, stage::APPLIED, vec![]);
        let prov: Vec<ProvRecord> = l.records().cloned().collect();
        let doc = export_chrome(&[], &prov);
        let evs = events_of(&doc);
        let phases: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("causal"))
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["s", "t", "f"], "start, step, finish in order");
    }

    #[test]
    fn batch_records_step_every_member_flow() {
        let mut l = Lineage::new(16);
        l.record(1, 5, stage::COMMIT, vec![field("source", 0u64)]);
        l.record(2, 6, stage::COMMIT, vec![field("source", 1u64)]);
        let b = l.new_batch(&[5, 6]);
        l.record(3, b, stage::MERGE, vec![field("member", 5u64), field("member", 6u64)]);
        l.record(4, 5, stage::APPLIED, vec![]);
        l.record(4, 6, stage::APPLIED, vec![]);
        let prov: Vec<ProvRecord> = l.records().cloned().collect();
        let doc = export_chrome(&[], &prov);
        let evs = events_of(&doc);
        let flow_ids: Vec<u64> = evs
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("causal"))
            .filter_map(|e| e.get("id").and_then(Value::as_num))
            .map(|n| n as u64)
            .collect();
        // Both member flows have 3 hops each (commit → merge → applied).
        assert_eq!(flow_ids.iter().filter(|&&i| i == 5).count(), 3);
        assert_eq!(flow_ids.iter().filter(|&&i| i == 6).count(), 3);
    }

    #[test]
    fn export_is_valid_json_with_escaped_payloads() {
        let mut t = Tracer::new(8);
        t.event(Level::Warn, "vm.broken_query", 5, vec![field("query", String::from("a\"b"))]);
        let recs: Vec<Record> = t.records().cloned().collect();
        let doc = export_chrome(&recs, &[]);
        assert!(parse(&doc).is_ok(), "must parse: {doc}");
    }
}
