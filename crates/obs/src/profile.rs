//! The per-operator maintenance-cost profiler (DESIGN.md §18): an
//! `EXPLAIN ANALYZE`-style accounting of where a maintenance plan spends
//! its rows and nanoseconds.
//!
//! Forensics (DESIGN.md §13) stops at *phase* granularity — queue wait,
//! query time, park time. This module drills the query-time phase down to
//! individual Z-set operators: each seed selection, join hop, compensation
//! join, Equation-6 term, extent apply, and WAL append records rows
//! in/out, weights cancelled, index probes, and elapsed nanoseconds into a
//! bounded per-plan aggregate keyed by `(view, scope)` — the same shape as
//! the view layer's compiled `MaintPlan`s.
//!
//! The store follows the lineage discipline: it lives behind a
//! `Cell<bool>` gate on the [`Collector`](crate::Collector), instrumented
//! callers check the gate *before* taking timestamps or building a
//! [`NodeKey`], and the disabled path costs one `Option` deref plus one
//! `Cell` read — no allocation, no clock access. Timing samples are wall
//! nanoseconds and appear **only** in profile renders, never in extents or
//! metric series, so turning the profiler on cannot move a byte of any
//! same-seed determinism surface.
//!
//! Renders are byte-stable for a given set of samples: plans and nodes
//! live in `BTreeMap`s, and the per-phase totals in both renders are
//! computed as the sums of their child operator nodes — conservation holds
//! by construction and is asserted by `tests/profile_props.rs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;

/// The pipeline phase an operator sample belongs to. Variant order is
/// render order within a plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpPhase {
    /// δσ+δπ of the update's delta — the SWEEP seed.
    Seed,
    /// A `__D ⋈ target` hop of the maintenance chain (including shared
    /// first-hop cache computation and per-view derivation).
    Hop,
    /// A SWEEP compensation join (`__D ⋈ Δⱼ`) plus its negated merge.
    Compensate,
    /// The final projection onto the view layout.
    Final,
    /// An Equation-6 adaptation term (schema-change batch path).
    Adapt,
    /// Conflict detection / disposition classification.
    Detect,
    /// Extent application (signed merge or full replace).
    Apply,
    /// WAL appends (intent, applied, replica records).
    Wal,
}

impl OpPhase {
    /// Every phase, in render order.
    pub const ALL: [OpPhase; 8] = [
        OpPhase::Seed,
        OpPhase::Hop,
        OpPhase::Compensate,
        OpPhase::Final,
        OpPhase::Adapt,
        OpPhase::Detect,
        OpPhase::Apply,
        OpPhase::Wal,
    ];

    /// The phase's render name.
    pub fn name(self) -> &'static str {
        match self {
            OpPhase::Seed => "seed",
            OpPhase::Hop => "hop",
            OpPhase::Compensate => "compensate",
            OpPhase::Final => "final",
            OpPhase::Adapt => "adapt",
            OpPhase::Detect => "detect",
            OpPhase::Apply => "apply",
            OpPhase::Wal => "wal",
        }
    }
}

/// Identity of one operator node within a plan's tree. Ordering — step,
/// then phase, then operator, then detail — is the render order, so the
/// tree reads in plan-execution order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeKey {
    /// Plan step index (0 = seed; hops count up; the final projection uses
    /// one past the last hop; warehouse-level nodes use 0).
    pub step: u32,
    /// Pipeline phase.
    pub phase: OpPhase,
    /// Operator name (`delta_select`, `delta_join_probe`, `eq6_term`,
    /// `apply_signed`, …).
    pub op: &'static str,
    /// Free-form discriminator — usually the target relation or term name.
    pub detail: String,
}

/// One operator invocation's measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpSample {
    /// Distinct input rows the operator consumed.
    pub rows_in: u64,
    /// Distinct output rows it produced.
    pub rows_out: u64,
    /// Z-set entries annihilated by weight cancellation.
    pub weights_cancelled: u64,
    /// Secondary-index probes issued.
    pub index_probes: u64,
    /// Elapsed wall nanoseconds.
    pub ns: u64,
}

/// A node's running aggregate over every recorded invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpAgg {
    /// Invocations recorded.
    pub calls: u64,
    /// Summed input rows.
    pub rows_in: u64,
    /// Summed output rows.
    pub rows_out: u64,
    /// Summed cancellations.
    pub weights_cancelled: u64,
    /// Summed index probes.
    pub index_probes: u64,
    /// Summed nanoseconds.
    pub ns: u64,
}

impl OpAgg {
    fn absorb(&mut self, s: OpSample) {
        self.calls += 1;
        self.rows_in += s.rows_in;
        self.rows_out += s.rows_out;
        self.weights_cancelled += s.weights_cancelled;
        self.index_probes += s.index_probes;
        self.ns += s.ns;
    }

    fn merge(&mut self, o: &OpAgg) {
        self.calls += o.calls;
        self.rows_in += o.rows_in;
        self.rows_out += o.rows_out;
        self.weights_cancelled += o.weights_cancelled;
        self.index_probes += o.index_probes;
        self.ns += o.ns;
    }
}

/// One plan's profile: its operator nodes plus an invocation count.
#[derive(Debug, Clone, Default)]
pub struct PlanProfile {
    /// Times the plan as a whole was invoked.
    pub invocations: u64,
    /// Per-operator aggregates, in render order.
    pub nodes: BTreeMap<NodeKey, OpAgg>,
    /// Samples dropped because the per-plan node cap was hit.
    pub dropped_nodes: u64,
}

impl PlanProfile {
    /// Per-phase totals, computed as the sums of the phase's child nodes —
    /// the conservation invariant the profile tests assert.
    pub fn phase_totals(&self) -> BTreeMap<OpPhase, OpAgg> {
        let mut out: BTreeMap<OpPhase, OpAgg> = BTreeMap::new();
        for (k, agg) in &self.nodes {
            out.entry(k.phase).or_default().merge(agg);
        }
        out
    }
}

/// Default cap on distinct `(view, scope)` plans.
pub const DEFAULT_MAX_PLANS: usize = 64;
/// Default cap on distinct operator nodes per plan.
pub const DEFAULT_MAX_NODES: usize = 256;

/// The bounded profile store: per-plan operator aggregates keyed by
/// `(view, scope)`, where scope is the driving relation for SWEEP plans,
/// `batch` for Equation-6 adaptation, and `pipeline` for warehouse-level
/// apply/WAL/conflict work.
#[derive(Debug, Clone)]
pub struct Profile {
    plans: BTreeMap<(String, String), PlanProfile>,
    max_plans: usize,
    max_nodes: usize,
    dropped_plans: u64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::new(DEFAULT_MAX_PLANS, DEFAULT_MAX_NODES)
    }
}

impl Profile {
    /// An empty profile bounded to `max_plans` plans of `max_nodes` nodes.
    pub fn new(max_plans: usize, max_nodes: usize) -> Self {
        Profile { plans: BTreeMap::new(), max_plans, max_nodes, dropped_plans: 0 }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of tracked plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Samples dropped at the plan cap.
    pub fn dropped_plans(&self) -> u64 {
        self.dropped_plans
    }

    /// Iterates `((view, scope), plan)` in render order.
    pub fn plans(&self) -> impl Iterator<Item = (&(String, String), &PlanProfile)> {
        self.plans.iter()
    }

    /// The profile of one `(view, scope)` plan, if tracked.
    pub fn plan(&self, view: &str, scope: &str) -> Option<&PlanProfile> {
        self.plans.get(&(view.to_string(), scope.to_string()))
    }

    /// Discards everything (caps are kept).
    pub fn clear(&mut self) {
        self.plans.clear();
        self.dropped_plans = 0;
    }

    fn plan_mut(&mut self, view: &str, scope: &str) -> Option<&mut PlanProfile> {
        let key = (view.to_string(), scope.to_string());
        if !self.plans.contains_key(&key) && self.plans.len() >= self.max_plans {
            self.dropped_plans += 1;
            return None;
        }
        Some(self.plans.entry(key).or_default())
    }

    /// Counts one invocation of the `(view, scope)` plan.
    pub fn invocation(&mut self, view: &str, scope: &str) {
        if let Some(p) = self.plan_mut(view, scope) {
            p.invocations += 1;
        }
    }

    /// Records one operator sample under the `(view, scope)` plan.
    pub fn record(&mut self, view: &str, scope: &str, key: NodeKey, s: OpSample) {
        let max_nodes = self.max_nodes;
        let Some(p) = self.plan_mut(view, scope) else { return };
        if !p.nodes.contains_key(&key) && p.nodes.len() >= max_nodes {
            p.dropped_nodes += 1;
            return;
        }
        p.nodes.entry(key).or_default().absorb(s);
    }

    /// Renders every plan (or only `view`'s plans) as an aligned
    /// `EXPLAIN ANALYZE`-style tree with per-phase totals.
    pub fn render_text(&self, view: Option<&str>) -> String {
        let mut out = String::new();
        let mut shown = 0usize;
        for ((v, scope), plan) in &self.plans {
            if view.is_some_and(|f| f != v) {
                continue;
            }
            shown += 1;
            let _ = writeln!(out, "plan {v} · {scope}  ({} invocations)", plan.invocations);
            let _ = writeln!(
                out,
                "  {:<4} {:<10} {:<28} {:>6} {:>9} {:>9} {:>7} {:>7} {:>12}",
                "step",
                "phase",
                "operator",
                "calls",
                "rows_in",
                "rows_out",
                "cancel",
                "probes",
                "ns"
            );
            for (k, a) in &plan.nodes {
                let op = if k.detail.is_empty() {
                    k.op.to_string()
                } else {
                    format!("{} {}", k.op, k.detail)
                };
                let _ = writeln!(
                    out,
                    "  {:<4} {:<10} {:<28} {:>6} {:>9} {:>9} {:>7} {:>7} {:>12}",
                    k.step,
                    k.phase.name(),
                    op,
                    a.calls,
                    a.rows_in,
                    a.rows_out,
                    a.weights_cancelled,
                    a.index_probes,
                    a.ns
                );
            }
            let totals = plan.phase_totals();
            out.push_str("  phase totals:");
            for phase in OpPhase::ALL {
                if let Some(t) = totals.get(&phase) {
                    let _ = write!(
                        out,
                        "  {}[rows {}→{}, {} ns]",
                        phase.name(),
                        t.rows_in,
                        t.rows_out,
                        t.ns
                    );
                }
            }
            out.push('\n');
            if plan.dropped_nodes > 0 {
                let _ = writeln!(out, "  ({} samples dropped at the node cap)", plan.dropped_nodes);
            }
        }
        if shown == 0 {
            out.push_str(match view {
                Some(v) => return format!("no profile for view {v} (is the profiler on?)\n"),
                None => "no profile captured (is the profiler on?)\n",
            });
        }
        if self.dropped_plans > 0 {
            let _ = writeln!(out, "({} samples dropped at the plan cap)", self.dropped_plans);
        }
        out
    }

    /// The profile as one JSON document. Per-phase totals are emitted as
    /// sums of the child nodes, so `nodes` and `phases` are conserved by
    /// construction.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"profile\":{\"plans\":[");
        for (i, ((v, scope), plan)) in self.plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"view\":");
            json::push_str(&mut out, v);
            out.push_str(",\"scope\":");
            json::push_str(&mut out, scope);
            let _ = write!(out, ",\"invocations\":{},\"nodes\":[", plan.invocations);
            for (j, (k, a)) in plan.nodes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ =
                    write!(out, "{{\"step\":{},\"phase\":\"{}\",\"op\":", k.step, k.phase.name());
                json::push_str(&mut out, k.op);
                out.push_str(",\"detail\":");
                json::push_str(&mut out, &k.detail);
                let _ = write!(
                    out,
                    ",\"calls\":{},\"rows_in\":{},\"rows_out\":{},\"cancelled\":{},\
                     \"probes\":{},\"ns\":{}}}",
                    a.calls, a.rows_in, a.rows_out, a.weights_cancelled, a.index_probes, a.ns
                );
            }
            out.push_str("],\"phases\":{");
            let totals = plan.phase_totals();
            let mut first = true;
            for phase in OpPhase::ALL {
                if let Some(t) = totals.get(&phase) {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "\"{}\":{{\"calls\":{},\"rows_in\":{},\"rows_out\":{},\
                         \"cancelled\":{},\"probes\":{},\"ns\":{}}}",
                        phase.name(),
                        t.calls,
                        t.rows_in,
                        t.rows_out,
                        t.weights_cancelled,
                        t.index_probes,
                        t.ns
                    );
                }
            }
            let _ = write!(out, "}},\"dropped_nodes\":{}}}", plan.dropped_nodes);
        }
        let _ = write!(out, "],\"dropped_plans\":{}}}}}", self.dropped_plans);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(step: u32, phase: OpPhase, op: &'static str, detail: &str) -> NodeKey {
        NodeKey { step, phase, op, detail: detail.into() }
    }

    fn sample(rows_in: u64, rows_out: u64, ns: u64) -> OpSample {
        OpSample { rows_in, rows_out, weights_cancelled: 0, index_probes: 0, ns }
    }

    #[test]
    fn phase_totals_are_sums_of_child_nodes() {
        let mut p = Profile::default();
        p.invocation("V", "R");
        p.record("V", "R", key(0, OpPhase::Seed, "delta_select", "R"), sample(10, 6, 100));
        p.record("V", "R", key(0, OpPhase::Seed, "delta_project", "R"), sample(6, 5, 40));
        p.record("V", "R", key(1, OpPhase::Hop, "join", "S"), sample(5, 9, 300));
        p.record("V", "R", key(0, OpPhase::Seed, "delta_select", "R"), sample(4, 2, 60));
        let plan = p.plan("V", "R").unwrap();
        let totals = plan.phase_totals();
        let seed = totals[&OpPhase::Seed];
        assert_eq!(seed.calls, 3);
        assert_eq!(seed.rows_in, 20);
        assert_eq!(seed.rows_out, 13);
        assert_eq!(seed.ns, 200);
        assert_eq!(totals[&OpPhase::Hop].ns, 300);
        // Conservation: summing every node equals summing every phase.
        let node_ns: u64 = plan.nodes.values().map(|a| a.ns).sum();
        let phase_ns: u64 = totals.values().map(|a| a.ns).sum();
        assert_eq!(node_ns, phase_ns);
    }

    #[test]
    fn renders_are_stable_and_parse() {
        let mut p = Profile::default();
        p.invocation("V", "R");
        p.record("V", "R", key(1, OpPhase::Hop, "join", "S"), sample(5, 9, 300));
        p.record("V", "R", key(0, OpPhase::Seed, "delta_select", "R"), sample(10, 6, 100));
        let text = p.render_text(None);
        assert!(text.contains("plan V · R  (1 invocations)"));
        let seed_pos = text.find("delta_select").unwrap();
        let hop_pos = text.find("join S").unwrap();
        assert!(seed_pos < hop_pos, "nodes render in step order regardless of insertion");
        assert!(text.contains("phase totals:"));
        let json = p.render_json();
        crate::json::parse(&json).expect("valid JSON");
        assert_eq!(json, p.clone().render_json(), "byte-stable render");
        assert!(json.contains("\"phase\":\"seed\""));
        assert!(p.render_text(Some("V")).contains("plan V"));
        assert!(p.render_text(Some("other")).contains("no profile for view other"));
    }

    #[test]
    fn caps_drop_and_count() {
        let mut p = Profile::new(1, 2);
        p.record("A", "r", key(0, OpPhase::Seed, "a", ""), sample(1, 1, 1));
        p.record("A", "r", key(0, OpPhase::Seed, "b", ""), sample(1, 1, 1));
        p.record("A", "r", key(0, OpPhase::Seed, "c", ""), sample(1, 1, 1));
        p.record("B", "r", key(0, OpPhase::Seed, "a", ""), sample(1, 1, 1));
        assert_eq!(p.plan_count(), 1);
        assert_eq!(p.dropped_plans(), 1);
        assert_eq!(p.plan("A", "r").unwrap().dropped_nodes, 1);
        // Existing nodes keep absorbing at the cap.
        p.record("A", "r", key(0, OpPhase::Seed, "a", ""), sample(1, 1, 1));
        assert_eq!(p.plan("A", "r").unwrap().nodes.len(), 2);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.dropped_plans(), 0);
    }

    #[test]
    fn empty_profile_renders_a_hint() {
        let p = Profile::default();
        assert!(p.render_text(None).contains("no profile captured"));
        crate::json::parse(&p.render_json()).expect("valid JSON");
    }
}
