//! The forensics analyzer: replays a [`Lineage`](crate::lineage::Lineage)
//! capture into per-update phase latencies and per-anomaly-class
//! distributions.
//!
//! For every causal id with a terminal `applied` record the analyzer
//! reconstructs:
//!
//! * **queue wait** — admission to the UMQ → the first maintenance Intent
//!   naming the id;
//! * **query time** — the last Intent → `applied` (a retried or re-parked
//!   step logs a fresh Intent, so this measures the *successful* attempt;
//!   retries show up as park time instead);
//! * **park time** — each `park` → the next Intent (the unpark retry),
//!   summed;
//! * **batch wait** — cyclic-group merge → the first Intent after it (how
//!   long an update waited for its batch to reach the queue head);
//! * **end-to-end latency** — source commit (falling back to admission when
//!   the commit record was evicted) → `applied`, bucketed by the worst
//!   **anomaly class** (paper §4: 1 = same-source DU ordering, 2 = semantic
//!   dependency involving a schema change, 3 = concurrent DU/SC conflict,
//!   4 = mutual/cyclic SC conflict; 0 = never in conflict).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lineage::{stage, ProvRecord, BATCH_BIT};
use crate::metrics::Histogram;
use crate::trace::FieldValue;

/// Aggregated phase latencies and anomaly-class distributions.
#[derive(Debug, Default)]
pub struct Forensics {
    /// Causal ids with a terminal `applied` record.
    pub applied_updates: u64,
    /// Ids that appear in at least one `conflict` record.
    pub conflicted_updates: u64,
    /// Admission → first Intent, µs.
    pub queue_wait_us: Histogram,
    /// Last Intent → applied, µs.
    pub query_time_us: Histogram,
    /// Summed park → retry-Intent gaps, µs (parked ids only).
    pub park_time_us: Histogram,
    /// Merge → first post-merge Intent, µs (merged ids only).
    pub batch_wait_us: Histogram,
    /// Commit (or admission) → applied, µs, over every applied id.
    pub end_to_end_us: Histogram,
    /// End-to-end latency by anomaly class (0 = no conflict).
    pub by_class_us: BTreeMap<u8, Histogram>,
}

fn u64_field(rec: &ProvRecord, key: &str) -> Option<u64> {
    rec.fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

/// The per-id event list, batch records expanded to every member they name
/// (`member` fields), ordered as captured.
fn timelines(records: &[ProvRecord]) -> BTreeMap<u64, Vec<(u64, &'static str, u8)>> {
    let mut by_id: BTreeMap<u64, Vec<(u64, &'static str, u8)>> = BTreeMap::new();
    for r in records {
        let class = u64_field(r, "class").unwrap_or(0) as u8;
        if r.id & BATCH_BIT != 0 {
            for (k, v) in &r.fields {
                if *k == "member" {
                    if let FieldValue::U64(m) = v {
                        by_id.entry(*m).or_default().push((r.ts_us, r.stage, class));
                    }
                }
            }
        } else {
            by_id.entry(r.id).or_default().push((r.ts_us, r.stage, class));
        }
    }
    by_id
}

/// Analyzes a lineage capture (see the module docs for the phase
/// definitions).
pub fn analyze(records: &[ProvRecord]) -> Forensics {
    let mut f = Forensics::default();
    for events in timelines(records).values() {
        let applied = events.iter().rev().find(|(_, s, _)| *s == stage::APPLIED);
        let Some(&(applied_ts, _, _)) = applied else { continue };
        f.applied_updates += 1;

        let admit = events.iter().find(|(_, s, _)| *s == stage::ADMIT).map(|e| e.0);
        let commit = events.iter().find(|(_, s, _)| *s == stage::COMMIT).map(|e| e.0);
        let intents: Vec<u64> = events
            .iter()
            .filter(|&&(ts, s, _)| s == stage::INTENT && ts <= applied_ts)
            .map(|e| e.0)
            .collect();

        if let (Some(admit_ts), Some(&first_intent)) = (admit, intents.first()) {
            f.queue_wait_us.record(first_intent.saturating_sub(admit_ts));
        }
        if let Some(&last_intent) = intents.last() {
            f.query_time_us.record(applied_ts.saturating_sub(last_intent));
        }

        let mut parked = 0u64;
        let mut saw_park = false;
        for &(park_ts, s, _) in events {
            if s == stage::PARK {
                saw_park = true;
                let retry = intents.iter().find(|&&t| t > park_ts).copied().unwrap_or(applied_ts);
                parked += retry.saturating_sub(park_ts);
            }
        }
        if saw_park {
            f.park_time_us.record(parked);
        }

        if let Some(&(merge_ts, _, _)) = events.iter().find(|(_, s, _)| *s == stage::MERGE) {
            let next = intents.iter().find(|&&t| t >= merge_ts).copied().unwrap_or(applied_ts);
            f.batch_wait_us.record(next.saturating_sub(merge_ts));
        }

        let class = events
            .iter()
            .filter(|(_, s, _)| *s == stage::CONFLICT)
            .map(|&(_, _, c)| c)
            .max()
            .unwrap_or(0);
        if class > 0 {
            f.conflicted_updates += 1;
        }
        let born = commit.or(admit).unwrap_or(applied_ts);
        let e2e = applied_ts.saturating_sub(born);
        f.end_to_end_us.record(e2e);
        f.by_class_us.entry(class).or_default().record(e2e);
    }
    f
}

fn hist_line(out: &mut String, label: &str, h: &Histogram) {
    let (p50, p95, p99) = h.percentiles();
    let _ = writeln!(
        out,
        "  {label:<12}  n={:<6} p50={p50} p95={p95} p99={p99} max={} µs",
        h.count(),
        h.max()
    );
}

impl Forensics {
    /// Renders the report as aligned text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "forensics: {} applied updates ({} conflicted)",
            self.applied_updates, self.conflicted_updates
        );
        out.push_str("per-phase latency\n");
        hist_line(&mut out, "queue wait", &self.queue_wait_us);
        hist_line(&mut out, "query time", &self.query_time_us);
        hist_line(&mut out, "park time", &self.park_time_us);
        hist_line(&mut out, "batch wait", &self.batch_wait_us);
        hist_line(&mut out, "end to end", &self.end_to_end_us);
        out.push_str("end-to-end latency by anomaly class\n");
        for (class, h) in &self.by_class_us {
            let label = match class {
                0 => "none".to_string(),
                c => format!("class {c}"),
            };
            hist_line(&mut out, &label, h);
        }
        out
    }

    /// The report as one JSON object (histograms as
    /// `{count,p50,p95,p99,max}`).
    pub fn render_json(&self) -> String {
        let hist = |h: &Histogram| {
            let (p50, p95, p99) = h.percentiles();
            format!(
                "{{\"count\":{},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{}}}",
                h.count(),
                h.max()
            )
        };
        let mut out = format!(
            "{{\"applied_updates\":{},\"conflicted_updates\":{},\"phases\":{{\
             \"queue_wait_us\":{},\"query_time_us\":{},\"park_time_us\":{},\
             \"batch_wait_us\":{},\"end_to_end_us\":{}}},\"by_class_us\":{{",
            self.applied_updates,
            self.conflicted_updates,
            hist(&self.queue_wait_us),
            hist(&self.query_time_us),
            hist(&self.park_time_us),
            hist(&self.batch_wait_us),
            hist(&self.end_to_end_us),
        );
        for (i, (class, h)) in self.by_class_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{class}\":{}", hist(h));
        }
        out.push_str("}}\n");
        out
    }
}

impl Forensics {
    /// [`Forensics::render_text`] followed by the per-operator drill-down
    /// from a [`Profile`](crate::profile::Profile) capture, so the
    /// phase-level attribution above is explained operator-by-operator
    /// below. When the profile is empty the drill-down is a one-line hint.
    pub fn render_text_with_profile(&self, profile: &crate::profile::Profile) -> String {
        let mut out = self.render_text();
        out.push_str("operator drill-down (query-time phase, per maintenance plan)\n");
        out.push_str(&profile.render_text(None));
        out
    }
}

/// Renders one id's lineage as a human-readable timeline (the CLI
/// `explain <id>` output). `records` should come from
/// [`Collector::explain`](crate::Collector::explain).
pub fn explain_text(id: u64, records: &[ProvRecord]) -> String {
    if records.is_empty() {
        return format!("no lineage for id {id} (is lineage capture on?)\n");
    }
    let mut out = format!("lineage of {id}\n");
    let t0 = records.first().map(|r| r.ts_us).unwrap_or(0);
    for r in records {
        let _ = write!(out, "  +{:>8} µs  {:<14}", r.ts_us.saturating_sub(t0), r.stage);
        if r.id != id {
            let _ = write!(out, " [batch {}]", r.id & !BATCH_BIT);
        }
        for (k, v) in &r.fields {
            match v {
                FieldValue::Str(s) => {
                    let _ = write!(out, " {k}={s}");
                }
                FieldValue::Text(s) => {
                    let _ = write!(out, " {k}={s}");
                }
                FieldValue::U64(n) => {
                    let _ = write!(out, " {k}={n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, " {k}={n}");
                }
                FieldValue::F64(x) => {
                    let _ = write!(out, " {k}={x}");
                }
                FieldValue::Bool(b) => {
                    let _ = write!(out, " {k}={b}");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::Lineage;
    use crate::trace::field;

    fn capture() -> Vec<ProvRecord> {
        let mut l = Lineage::new(64);
        // id 1: clean DU — commit 0, admit 10, intent 30, applied 50.
        l.record(0, 1, stage::COMMIT, vec![field("source", 0u64)]);
        l.record(10, 1, stage::ADMIT, vec![]);
        l.record(30, 1, stage::INTENT, vec![]);
        l.record(50, 1, stage::APPLIED, vec![]);
        // id 2: conflicted (class 3), parked once, merged.
        l.record(0, 2, stage::COMMIT, vec![field("source", 1u64)]);
        l.record(5, 2, stage::ADMIT, vec![]);
        l.record(8, 2, stage::CONFLICT, vec![field("with", 1u64), field("class", 3u64)]);
        let b = l.new_batch(&[2]);
        l.record(12, b, stage::MERGE, vec![field("member", 2u64)]);
        l.record(20, 2, stage::INTENT, vec![]);
        l.record(25, 2, stage::PARK, vec![]);
        l.record(100, 2, stage::INTENT, vec![]);
        l.record(140, 2, stage::APPLIED, vec![]);
        // id 3: admitted, never applied (still queued) — not counted.
        l.record(7, 3, stage::ADMIT, vec![]);
        l.records().cloned().collect()
    }

    #[test]
    fn phases_reconstruct_from_the_timeline() {
        let f = analyze(&capture());
        assert_eq!(f.applied_updates, 2);
        assert_eq!(f.conflicted_updates, 1);
        // id 1: queue wait 30-10=20; id 2: 20-5=15.
        assert_eq!(f.queue_wait_us.count(), 2);
        assert_eq!(f.queue_wait_us.sum(), 35);
        // Query time: id 1 50-30=20; id 2 uses the retry intent, 140-100=40.
        assert_eq!(f.query_time_us.sum(), 60);
        // Park time: id 2 only, 100-25=75.
        assert_eq!(f.park_time_us.count(), 1);
        assert_eq!(f.park_time_us.sum(), 75);
        // Batch wait: merge at 12 → next intent at 20.
        assert_eq!(f.batch_wait_us.count(), 1);
        assert_eq!(f.batch_wait_us.sum(), 8);
    }

    #[test]
    fn end_to_end_latency_buckets_by_class() {
        let f = analyze(&capture());
        assert_eq!(f.by_class_us.keys().copied().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(f.by_class_us[&0].sum(), 50, "id 1: commit 0 → applied 50");
        assert_eq!(f.by_class_us[&3].sum(), 140, "id 2: commit 0 → applied 140");
    }

    #[test]
    fn reports_render_both_ways() {
        let f = analyze(&capture());
        let text = f.render_text();
        assert!(text.contains("2 applied updates (1 conflicted)"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("class 3"));
        let json = f.render_json();
        crate::json::parse(&json).expect("valid JSON");
        assert!(json.contains("\"applied_updates\":2"));
        assert!(json.contains("\"3\":{\"count\":1"));
    }

    #[test]
    fn explain_renders_a_timeline() {
        let recs = capture();
        let two: Vec<ProvRecord> = recs
            .iter()
            .filter(|r| {
                r.id == 2
                    || r.fields
                        .iter()
                        .any(|(k, v)| *k == "member" && matches!(v, FieldValue::U64(2)))
            })
            .cloned()
            .collect();
        let text = explain_text(2, &two);
        assert!(text.contains("lineage of 2"));
        assert!(text.contains("commit"));
        assert!(text.contains("[batch 1]"), "batch records are flagged: {text}");
        assert!(text.contains("class=3"));
        assert!(explain_text(99, &[]).contains("no lineage"));
    }
}
