//! Structured trace records: spans, events, fields, and the bounded ring.
//!
//! A span is two records (`SpanStart`, `SpanEnd`) sharing an id; the tracer
//! keeps a stack of open spans so every record carries the id of its
//! enclosing span (`parent_id`, 0 at the root). Records land in a bounded
//! ring buffer: when full, the oldest record is dropped and counted —
//! tracing never grows without bound and never reallocates after warm-up.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::json;

/// A field value. `Str` carries `&'static str` so hot-path fields never
/// allocate; `Text` is for dynamic strings on cold paths (error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A static string (no allocation).
    Str(&'static str),
    /// An owned string (cold paths only).
    Text(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Text(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A named field: `key = value`.
pub type Field = (&'static str, FieldValue);

/// Builds a [`Field`] from anything convertible to a [`FieldValue`].
pub fn field(key: &'static str, value: impl Into<FieldValue>) -> Field {
    (key, value.into())
}

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal operational events.
    Info,
    /// Something surprising that deserves attention (e.g. a skipped commit).
    Warn,
}

impl Level {
    /// Lower-case name, as exported in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// What a [`Record`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    SpanStart,
    /// A span closed (carries `dur_us`).
    SpanEnd,
    /// A point event.
    Event,
}

impl RecordKind {
    fn as_str(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record kind.
    pub kind: RecordKind,
    /// Severity (events; spans are `Info`).
    pub level: Level,
    /// Span or event name.
    pub name: &'static str,
    /// Id of the span this record belongs to (0 for root-level events).
    pub span_id: u64,
    /// Id of the enclosing span (0 at the root).
    pub parent_id: u64,
    /// Timestamp in clock microseconds.
    pub ts_us: u64,
    /// Span duration; `SpanEnd` only.
    pub dur_us: Option<u64>,
    /// Key=value payload.
    pub fields: Vec<Field>,
}

impl Record {
    /// Appends this record as one JSON line (newline included).
    pub fn push_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"ts_us\":{},\"kind\":\"{}\",\"level\":\"{}\",\"name\":",
            self.ts_us,
            self.kind.as_str(),
            self.level.as_str()
        );
        json::push_str(out, self.name);
        let _ = write!(out, ",\"span\":{},\"parent\":{}", self.span_id, self.parent_id);
        if let Some(d) = self.dur_us {
            let _ = write!(out, ",\"dur_us\":{d}");
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str(out, k);
                out.push(':');
                match v {
                    FieldValue::Str(s) => json::push_str(out, s),
                    FieldValue::Text(s) => json::push_str(out, s),
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::F64(n) => json::push_f64(out, *n),
                    FieldValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
}

/// The bounded record ring plus the open-span stack.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    ring: VecDeque<Record>,
    dropped: u64,
    next_id: u64,
    stack: Vec<u64>,
}

impl Tracer {
    /// A tracer holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            next_id: 1,
            stack: Vec::new(),
        }
    }

    fn push(&mut self, rec: Record) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    /// Opens a span; returns its id.
    pub fn begin_span(&mut self, name: &'static str, ts_us: u64, fields: Vec<Field>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.stack.push(id);
        self.push(Record {
            kind: RecordKind::SpanStart,
            level: Level::Info,
            name,
            span_id: id,
            parent_id: parent,
            ts_us,
            dur_us: None,
            fields,
        });
        id
    }

    /// Closes span `id` opened at `start_us`. Spans close LIFO (RAII guards
    /// enforce this); out-of-order closes just pop to the matching frame.
    pub fn end_span(&mut self, name: &'static str, id: u64, start_us: u64, ts_us: u64) {
        while let Some(top) = self.stack.pop() {
            if top == id {
                break;
            }
        }
        let parent = self.stack.last().copied().unwrap_or(0);
        self.push(Record {
            kind: RecordKind::SpanEnd,
            level: Level::Info,
            name,
            span_id: id,
            parent_id: parent,
            ts_us,
            dur_us: Some(ts_us.saturating_sub(start_us)),
            fields: Vec::new(),
        });
    }

    /// Records a point event inside the current span.
    pub fn event(&mut self, level: Level, name: &'static str, ts_us: u64, fields: Vec<Field>) {
        let parent = self.stack.last().copied().unwrap_or(0);
        self.push(Record {
            kind: RecordKind::Event,
            level,
            name,
            span_id: parent,
            parent_id: parent,
            ts_us,
            dur_us: None,
            fields,
        });
    }

    /// Records currently in the ring, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes the ring as JSONL, oldest record first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            rec.push_jsonl(&mut out);
        }
        out
    }

    /// Empties the ring (keeps the id counter and open-span stack).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_nesting_assigns_parent_ids() {
        let mut t = Tracer::new(64);
        let outer = t.begin_span("outer", 10, vec![]);
        let inner = t.begin_span("inner", 20, vec![]);
        t.event(Level::Info, "tick", 25, vec![]);
        t.end_span("inner", inner, 20, 30);
        t.end_span("outer", outer, 10, 40);

        let recs: Vec<&Record> = t.records().collect();
        assert_eq!(recs.len(), 5);
        assert_eq!((recs[0].name, recs[0].parent_id), ("outer", 0));
        assert_eq!((recs[1].name, recs[1].parent_id), ("inner", outer));
        assert_eq!((recs[2].name, recs[2].span_id), ("tick", inner));
        assert_eq!(recs[3].dur_us, Some(10));
        assert_eq!(recs[4].dur_us, Some(30));
        assert_eq!(recs[4].parent_id, 0);
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut t = Tracer::new(3);
        for i in 0..5u64 {
            t.event(Level::Info, "e", i, vec![field("i", i)]);
        }
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.records().map(|r| r.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut t = Tracer::new(8);
        let s = t.begin_span("step", 5, vec![field("strategy", "pessimistic")]);
        t.event(Level::Warn, "skip", 6, vec![field("err", String::from("x\"y"))]);
        t.end_span("step", s, 5, 9);
        let out = t.export_jsonl();
        let lines: Vec<&str> = out.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ts_us\":5,\"kind\":\"span_start\""));
        assert!(lines[0].contains("\"strategy\":\"pessimistic\""));
        assert!(lines[1].contains("\"level\":\"warn\""));
        assert!(lines[1].contains("\"err\":\"x\\\"y\""));
        assert!(lines[2].contains("\"dur_us\":4"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }
}
