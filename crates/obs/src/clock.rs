//! Pluggable time sources for trace timestamps.
//!
//! The collector never calls `Instant::now` directly: it asks a [`Clock`].
//! Real processes (the CLI) use [`WallClock`]; the discrete-event simulation
//! uses [`VirtualClock`], whose cell `dyno-sim`'s port advances, so every
//! trace record is stamped in *simulated* microseconds and lines up with the
//! cost model rather than with host scheduling noise.

use std::cell::Cell;
use std::fmt::Debug;
use std::rc::Rc;
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Debug {
    /// Current time in microseconds. The origin is clock-defined (process
    /// start for wall clocks, simulation epoch for virtual ones); only
    /// differences and ordering are meaningful.
    fn now_us(&self) -> u64;
}

/// Wall time, measured from clock creation.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A manually-advanced clock: a shared cell of simulated microseconds.
///
/// Clones share the same cell, so the simulation port can keep one handle
/// and the collector another; [`VirtualClock::set`] is visible to both.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Rc<Cell<u64>>,
}

impl VirtualClock {
    /// A virtual clock starting at 0 µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock to `us`. Callers are expected to move it forward
    /// only, but this is not enforced (rewinding would merely produce
    /// out-of-order timestamps in the trace).
    pub fn set(&self, us: u64) {
        self.now.set(us);
    }

    /// Current simulated time.
    pub fn get(&self) -> u64 {
        self.now.get()
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_shares_cell_across_clones() {
        let c = VirtualClock::new();
        let view = c.clone();
        assert_eq!(view.now_us(), 0);
        c.set(42_000);
        assert_eq!(view.now_us(), 42_000);
        assert_eq!(c.get(), 42_000);
    }
}
