//! Time-series telemetry: windowed sampling of a metrics [`Registry`] into
//! bounded ring-buffered series.
//!
//! The registry keeps *cumulative* state — counters only grow, histograms
//! only accumulate — which answers "how much in total?" but not "how stale
//! were we at minute 3?". A [`Sampler`] closes that gap: on a fixed
//! virtual-clock cadence it snapshots every registered metric into one point
//! per window —
//!
//! - **counters** → the per-window *delta* (divide by the window length for
//!   a rate),
//! - **gauges** → the value at the window boundary,
//! - **histograms** → a per-window [`HistWindow`] (count/sum/min/max and
//!   p50/p95/p99 of only that window's samples), taken via
//!   [`Histogram::snapshot_and_reset_window`] so the cumulative quantiles
//!   that `stats` and the figures report are untouched.
//!
//! Each series lives in a bounded ring: when `capacity` windows are held the
//! oldest point is dropped and counted, never reallocated. Sampling is
//! *lazy* — the driver calls [`Sampler::maybe_sample`] whenever its clock
//! moved, and every window boundary the clock passed since the last call is
//! emitted. When the clock jumps several windows at once (a long maintenance
//! batch), the accumulated counter deltas and histogram samples are
//! attributed to the **first** elapsed window and the remaining skipped
//! windows record zeros: the sampler reports what it observed rather than
//! fabricating a distribution over the gap.
//!
//! One registry should be watched by at most one sampler: histogram window
//! snapshots are consuming, so two samplers would steal windows from each
//! other.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::json;
use crate::metrics::{HistWindow, Registry};

/// What kind of metric a series was sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-window deltas of a monotonic counter.
    Counter,
    /// Gauge value at each window boundary.
    Gauge,
    /// Per-window histogram summaries.
    Histogram,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Points {
    Counter(VecDeque<(u64, u64)>),
    Gauge(VecDeque<(u64, i64)>),
    Histogram(VecDeque<(u64, HistWindow)>),
}

#[derive(Debug)]
struct Series {
    points: Points,
    dropped: u64,
}

impl Series {
    fn kind(&self) -> SeriesKind {
        match self.points {
            Points::Counter(_) => SeriesKind::Counter,
            Points::Gauge(_) => SeriesKind::Gauge,
            Points::Histogram(_) => SeriesKind::Histogram,
        }
    }

    fn len(&self) -> usize {
        match &self.points {
            Points::Counter(p) => p.len(),
            Points::Gauge(p) => p.len(),
            Points::Histogram(p) => p.len(),
        }
    }
}

/// Samples a [`Registry`] into bounded per-metric time series on a fixed
/// window cadence (see the module docs for semantics).
#[derive(Debug)]
pub struct Sampler {
    registry: Registry,
    window_us: u64,
    capacity: usize,
    next_window_end: u64,
    windows: u64,
    last_counters: BTreeMap<&'static str, u64>,
    series: BTreeMap<&'static str, Series>,
}

impl Sampler {
    /// A sampler over `registry` emitting one point per `window_us` of
    /// clock, holding at most `capacity` points per series. The first window
    /// ends at `start_us + window_us`. Counters registered at creation time
    /// are baselined at their current values, so the first window reports
    /// only activity after the sampler existed.
    pub fn new(registry: Registry, window_us: u64, capacity: usize, start_us: u64) -> Self {
        assert!(window_us > 0, "window must be positive");
        assert!(capacity > 0, "capacity must be positive");
        let last_counters = registry.counters().into_iter().collect();
        Sampler {
            registry,
            window_us,
            capacity,
            next_window_end: start_us + window_us,
            windows: 0,
            last_counters,
            series: BTreeMap::new(),
        }
    }

    /// The window length, in clock microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Windows emitted so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of distinct series sampled so far.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Emits a point for every window boundary `now_us` has passed since
    /// the last call. Returns the number of windows emitted (0 when the
    /// clock has not yet crossed the next boundary).
    pub fn maybe_sample(&mut self, now_us: u64) -> u64 {
        let mut emitted = 0;
        while now_us >= self.next_window_end {
            let end = self.next_window_end;
            self.sample_window(end);
            self.next_window_end += self.window_us;
            emitted += 1;
        }
        emitted
    }

    /// Closes the current partial window at `now_us` immediately and
    /// restarts the cadence from there. For interactive use (the CLI's
    /// `series sample`), where waiting for a wall-clock boundary would make
    /// the command feel broken.
    pub fn sample_now(&mut self, now_us: u64) {
        self.sample_window(now_us);
        self.next_window_end = now_us + self.window_us;
    }

    fn sample_window(&mut self, end_us: u64) {
        self.windows += 1;
        let cap = self.capacity;
        for (name, v) in self.registry.counters() {
            let last = self.last_counters.insert(name, v).unwrap_or(0);
            let delta = v.wrapping_sub(last);
            let s = self
                .series
                .entry(name)
                .or_insert(Series { points: Points::Counter(VecDeque::new()), dropped: 0 });
            if let Points::Counter(p) = &mut s.points {
                if p.len() == cap {
                    p.pop_front();
                    s.dropped += 1;
                }
                p.push_back((end_us, delta));
            }
        }
        for (name, v) in self.registry.gauges() {
            let s = self
                .series
                .entry(name)
                .or_insert(Series { points: Points::Gauge(VecDeque::new()), dropped: 0 });
            if let Points::Gauge(p) = &mut s.points {
                if p.len() == cap {
                    p.pop_front();
                    s.dropped += 1;
                }
                p.push_back((end_us, v));
            }
        }
        for (name, h) in self.registry.histograms() {
            let w = h.snapshot_and_reset_window();
            let s = self
                .series
                .entry(name)
                .or_insert(Series { points: Points::Histogram(VecDeque::new()), dropped: 0 });
            if let Points::Histogram(p) = &mut s.points {
                if p.len() == cap {
                    p.pop_front();
                    s.dropped += 1;
                }
                p.push_back((end_us, w));
            }
        }
    }

    /// The counter series `name` as `(window_end_us, delta)` points (empty
    /// when absent or of another kind).
    pub fn counter_points(&self, name: &str) -> Vec<(u64, u64)> {
        match self.series.get(name).map(|s| &s.points) {
            Some(Points::Counter(p)) => p.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// The gauge series `name` as `(window_end_us, value)` points.
    pub fn gauge_points(&self, name: &str) -> Vec<(u64, i64)> {
        match self.series.get(name).map(|s| &s.points) {
            Some(Points::Gauge(p)) => p.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// The histogram series `name` as `(window_end_us, window)` points.
    pub fn histogram_points(&self, name: &str) -> Vec<(u64, HistWindow)> {
        match self.series.get(name).map(|s| &s.points) {
            Some(Points::Histogram(p)) => p.iter().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Points evicted from series `name`'s ring so far.
    pub fn dropped(&self, name: &str) -> u64 {
        self.series.get(name).map_or(0, |s| s.dropped)
    }

    /// The capture as one JSON object:
    /// `{"window_us":W,"windows":N,"series":{name:{"kind":..,"dropped":..,"points":[..]}}}`
    /// where counter/gauge points are `[t,v]` pairs and histogram points are
    /// `[t,count,p50,p95,p99,max]` rows. Byte-stable for identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"window_us\":{},\"windows\":{},", self.window_us, self.windows);
        out.push_str("\"series\":{");
        for (i, (name, s)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            let _ = write!(out, ":{{\"kind\":\"{}\",\"dropped\":{},", s.kind().as_str(), s.dropped);
            out.push_str("\"points\":[");
            match &s.points {
                Points::Counter(p) => {
                    for (j, (t, v)) in p.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{t},{v}]");
                    }
                }
                Points::Gauge(p) => {
                    for (j, (t, v)) in p.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{t},{v}]");
                    }
                }
                Points::Histogram(p) => {
                    for (j, (t, w)) in p.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "[{t},{},{},{},{},{}]",
                            w.count, w.p50, w.p95, w.p99, w.max
                        );
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// An aligned text rendering of the latest state of every series: last
    /// point, per-window rate for counters, and point counts.
    pub fn render_text(&self) -> String {
        let width = self.series.keys().map(|n| n.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<width$}  {:<9}  {:>7}  last\n", "series", "kind", "points");
        for (name, s) in &self.series {
            let last = match &s.points {
                Points::Counter(p) => {
                    p.back().map_or("-".to_string(), |(t, v)| format!("Δ{v}/win @{}ms", t / 1000))
                }
                Points::Gauge(p) => {
                    p.back().map_or("-".to_string(), |(t, v)| format!("{v} @{}ms", t / 1000))
                }
                Points::Histogram(p) => p.back().map_or("-".to_string(), |(t, w)| {
                    format!("n={} p50={} p99={} @{}ms", w.count, w.p50, w.p99, t / 1000)
                }),
            };
            let _ =
                writeln!(out, "{name:<width$}  {:<9}  {:>7}  {last}", s.kind().as_str(), s.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_become_deltas_and_gauges_samples() {
        let r = Registry::new();
        let c = r.counter("hits");
        let g = r.gauge("depth");
        c.add(5);
        let mut s = Sampler::new(r.clone(), 1_000, 8, 0);
        // Pre-existing counter value is the baseline, not the first delta.
        c.add(3);
        g.set(7);
        assert_eq!(s.maybe_sample(999), 0, "window not yet closed");
        assert_eq!(s.maybe_sample(1_000), 1);
        c.add(10);
        g.set(-2);
        assert_eq!(s.maybe_sample(2_500), 1);
        assert_eq!(s.counter_points("hits"), vec![(1_000, 3), (2_000, 10)]);
        assert_eq!(s.gauge_points("depth"), vec![(1_000, 7), (2_000, -2)]);
        assert_eq!(s.windows(), 2);
        assert_eq!(s.series_count(), 2);
    }

    #[test]
    fn skipped_windows_attribute_activity_to_the_first() {
        let r = Registry::new();
        let c = r.counter("n");
        let mut s = Sampler::new(r, 100, 8, 0);
        c.add(30);
        // The clock jumps three windows at once: the whole delta lands in
        // the first, the rest are zeros — never fabricated.
        assert_eq!(s.maybe_sample(300), 3);
        assert_eq!(s.counter_points("n"), vec![(100, 30), (200, 0), (300, 0)]);
    }

    #[test]
    fn histogram_series_use_window_snapshots() {
        let r = Registry::new();
        let h = r.histogram("lat");
        let mut s = Sampler::new(r, 100, 8, 0);
        h.record(10);
        h.record(20);
        s.maybe_sample(100);
        h.record(1_000);
        s.maybe_sample(200);
        let pts = s.histogram_points("lat");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1.count, 2);
        assert_eq!(pts[1].1.count, 1);
        assert_eq!(pts[1].1.p50, 1_000, "second window sees only its own sample");
        assert_eq!(h.count(), 3, "cumulative histogram unaffected");
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let r = Registry::new();
        r.counter("n");
        let mut s = Sampler::new(r, 10, 3, 0);
        s.maybe_sample(60);
        assert_eq!(s.counter_points("n").len(), 3);
        assert_eq!(s.dropped("n"), 3);
        assert_eq!(s.counter_points("n")[0].0, 40, "oldest points evicted first");
    }

    #[test]
    fn json_and_text_render_all_kinds() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.gauge("g").set(4);
        r.histogram("h").record(9);
        let mut s = Sampler::new(r.clone(), 50, 4, 0);
        r.counter("c").add(2);
        s.maybe_sample(50);
        let j = s.to_json();
        assert!(j.contains("\"window_us\":50"));
        assert!(j.contains("\"c\":{\"kind\":\"counter\",\"dropped\":0,\"points\":[[50,2]]"));
        assert!(j.contains("\"g\":{\"kind\":\"gauge\""));
        assert!(j.contains("\"h\":{\"kind\":\"histogram\""));
        crate::json::parse(&j).expect("sampler JSON parses");
        let t = s.render_text();
        assert!(t.contains("series"));
        assert!(t.contains("histogram"));
    }

    #[test]
    fn sample_now_closes_a_partial_window() {
        let r = Registry::new();
        let c = r.counter("n");
        let mut s = Sampler::new(r, 1_000_000, 4, 0);
        c.add(2);
        s.sample_now(1_234);
        assert_eq!(s.counter_points("n"), vec![(1_234, 2)]);
        // Cadence restarts from the forced sample.
        assert_eq!(s.maybe_sample(1_001_233), 0);
        assert_eq!(s.maybe_sample(1_001_234), 1);
    }
}
