//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record. Table-driven; the table is built at compile
//! time so the hot path is one lookup per byte.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes` (standard init `!0`, final complement).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), clean, "bit {i} flip must be detected");
            data[i / 8] ^= 1 << (i % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
