//! Manual little-endian binary codec.
//!
//! The workspace's zero-dependency rule forbids serde, so every type that
//! participates in recovery writes itself through [`Enc`] and reads itself
//! back through [`Dec`]. The format is deliberately boring: fixed-width
//! little-endian integers, `u32`-length-prefixed byte strings, one tag byte
//! per enum variant. Floats travel as raw IEEE-754 bits so a value round
//! trips bit-identically (the crash oracle compares views for *bit*
//! identity, not approximate equality).

use std::fmt;

/// Decoding failure: either the buffer ended mid-value or a tag/length was
/// out of the format's vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ran out before the value was complete.
    Eof,
    /// Structurally well-formed bytes that decode to an impossible value
    /// (unknown enum tag, invalid UTF-8, a schema that fails validation...).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of record"),
            WireError::Invalid(why) => write!(f, "invalid record contents: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte (used for enum tags and bools).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write an `f64` as its raw IEEE-754 bit pattern (exact round trip).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-style decoder over a byte slice; the mirror of [`Enc`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders should end here.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a bool; any byte other than 0/1 is invalid.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Invalid(format!("bool byte {b}"))),
        }
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn f64_bits(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|e| WireError::Invalid(format!("utf8: {e}")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Encode a sequence with a `u32` count prefix.
pub fn enc_seq<T>(e: &mut Enc, items: &[T], mut f: impl FnMut(&mut Enc, &T)) {
    e.u32(items.len() as u32);
    for item in items {
        f(e, item);
    }
}

/// Decode a sequence written by [`enc_seq`]. The count is sanity-capped
/// against the remaining buffer so a corrupt length can't trigger a huge
/// allocation before the `Eof` would surface naturally.
pub fn dec_seq<T>(
    d: &mut Dec<'_>,
    mut f: impl FnMut(&mut Dec<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = d.u32()? as usize;
    if n > d.remaining() {
        return Err(WireError::Eof);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f(d)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.bool(true);
        e.bool(false);
        e.f64_bits(-0.0);
        e.f64_bits(f64::NAN);
        e.str("hello — unicode ✓");
        e.bytes(&[0, 255, 1]);
        let buf = e.finish();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64_bits().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "hello — unicode ✓");
        assert_eq!(d.bytes().unwrap(), &[0, 255, 1]);
        assert!(d.is_done());
    }

    #[test]
    fn truncation_yields_eof_not_panic() {
        let mut e = Enc::new();
        e.str("payload");
        e.u64(9);
        let buf = e.finish();
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            // Whichever read hits the cut must return Eof, never panic.
            let r = d.str().and_then(|_| d.u64().map(|_| ()));
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.bool(), Err(WireError::Invalid(_))));
        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(d.str(), Err(WireError::Invalid(_))));
    }

    #[test]
    fn seq_round_trip_and_hostile_count() {
        let mut e = Enc::new();
        enc_seq(&mut e, &[1u64, 2, 3], |e, v| e.u64(*v));
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(dec_seq(&mut d, |d| d.u64()).unwrap(), vec![1, 2, 3]);

        // A corrupt huge count must fail fast instead of allocating.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(dec_seq(&mut d, |d| d.u64()), Err(WireError::Eof));
    }
}
