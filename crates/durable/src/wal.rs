//! The append-only log itself: framing, replay, and checkpoint truncation.
//!
//! ## Record format
//!
//! Every record is self-describing:
//!
//! ```text
//! +------+------+----------+----------+-----------+
//! | 0xD1 | 0x40 | len: u32 | seq: u64 | crc: u32  |  payload (len bytes)
//! +------+------+----------+----------+-----------+
//!   magic (2)     LE          LE        LE, over
//!                                       seq ‖ payload
//! ```
//!
//! 18 bytes of header, then the payload. The CRC covers the sequence number
//! *and* the payload, so a record copied to the wrong position (or a stale
//! sector resurfacing) fails the checksum even if its bytes are internally
//! consistent. Sequence numbers are strictly consecutive within a log image;
//! they keep counting across [`Wal::rewrite`] (checkpoint truncation), so a
//! log can never silently "start over".
//!
//! ## Torn tails
//!
//! A power cut can leave a prefix of the last record on disk. Replay stops
//! at the first sign of trouble — short header, bad magic, short payload,
//! CRC mismatch, or a sequence break — and reports everything from there on
//! as the torn tail. A record that never finished writing is a record that
//! was never durably logged; the commit protocol upstream is designed so
//! that this is always safe to discard.

use crate::crc::crc32;
use crate::storage::{Storage, StorageError};
use dyno_obs::Collector;
use std::fmt;

/// First magic byte of every record.
pub const MAGIC0: u8 = 0xD1;
/// Second magic byte of every record.
pub const MAGIC1: u8 = 0x40;
/// Fixed header size: magic (2) + len (4) + seq (8) + crc (4).
pub const HEADER_LEN: usize = 18;

/// A WAL-level failure. Torn or corrupt tails are *not* errors — they are
/// reported through [`Replay`] — so the only failure source is storage I/O.
#[derive(Debug, Clone)]
pub enum WalError {
    /// The underlying storage backend failed.
    Storage(StorageError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Storage(e) => write!(f, "wal: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::Storage(e)
    }
}

/// What [`Wal::open`] found in the log: the intact record payloads in write
/// order, plus an accounting of any discarded tail.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Payloads of every intact record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// 1 if a torn/corrupt tail was discarded, 0 for a cleanly closed log.
    /// (The tail is opaque bytes — there is no way to count how many records
    /// it was "supposed" to hold, so this is a flag-shaped counter.)
    pub torn_records: u64,
    /// Bytes discarded as the torn tail.
    pub torn_bytes: u64,
}

/// An append-only, CRC-framed, sequence-numbered log over a [`Storage`]
/// backend. See the module docs for the record format.
#[derive(Debug, Clone)]
pub struct Wal {
    storage: Box<dyn Storage>,
    next_seq: u64,
    obs: Collector,
}

impl Wal {
    /// Start a fresh log on `storage`, erasing whatever it held.
    pub fn create(mut storage: Box<dyn Storage>) -> Result<Self, WalError> {
        storage.replace(&[])?;
        Ok(Self { storage, next_seq: 1, obs: Collector::disabled() })
    }

    /// Open an existing log, replaying every intact record and discarding a
    /// torn tail. The returned [`Wal`] appends after the last intact record
    /// (the torn bytes stay on storage until the next [`Wal::rewrite`],
    /// which recovery performs as its final step).
    pub fn open(storage: Box<dyn Storage>) -> Result<(Self, Replay), WalError> {
        let bytes = storage.read_all()?;
        let mut replay = Replay::default();
        let mut pos = 0usize;
        let mut last_seq = 0u64;
        while pos < bytes.len() {
            match parse_record(&bytes[pos..], last_seq) {
                Some((seq, payload, consumed)) => {
                    last_seq = seq;
                    replay.payloads.push(payload.to_vec());
                    pos += consumed;
                }
                None => {
                    replay.torn_records = 1;
                    replay.torn_bytes = (bytes.len() - pos) as u64;
                    break;
                }
            }
        }
        let wal = Self { storage, next_seq: last_seq + 1, obs: Collector::disabled() };
        Ok((wal, replay))
    }

    /// Attach an observability collector; subsequent appends count into
    /// `wal.appends`, `wal.bytes`, and `wal.checkpoints`.
    pub fn bind_obs(&mut self, obs: &Collector) {
        self.obs = obs.clone();
    }

    /// Append one record, returning its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let frame = frame_record(seq, payload);
        self.storage.append(&frame)?;
        self.next_seq += 1;
        self.obs.counter("wal.appends").inc();
        self.obs.counter("wal.bytes").add(frame.len() as u64);
        Ok(seq)
    }

    /// Atomically replace the whole log with a single record (a checkpoint).
    /// The sequence number keeps counting — truncation never resets it.
    pub fn rewrite(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let frame = frame_record(seq, payload);
        self.storage.replace(&frame)?;
        self.next_seq += 1;
        self.obs.counter("wal.checkpoints").inc();
        self.obs.counter("wal.bytes").add(frame.len() as u64);
        Ok(seq)
    }

    /// The sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current size of the log in bytes.
    pub fn len_bytes(&self) -> Result<u64, WalError> {
        Ok(self.storage.len()?)
    }

    /// Records appended since the log was created/opened *plus* everything
    /// before — i.e. `next_seq - 1` total records ever written.
    pub fn records_written(&self) -> u64 {
        self.next_seq - 1
    }
}

fn frame_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let crc = crc32(&crc_input);

    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.push(MAGIC0);
    frame.push(MAGIC1);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parse one record at the start of `buf`. `last_seq` is the previous
/// record's sequence number (0 before the first). Returns
/// `(seq, payload, bytes_consumed)`, or `None` if the bytes are torn,
/// corrupt, or out of sequence.
fn parse_record(buf: &[u8], last_seq: u64) -> Option<(u64, &[u8], usize)> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    if buf[0] != MAGIC0 || buf[1] != MAGIC1 {
        return None;
    }
    let len = u32::from_le_bytes(buf[2..6].try_into().unwrap()) as usize;
    let seq = u64::from_le_bytes(buf[6..14].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[14..18].try_into().unwrap());
    if buf.len() < HEADER_LEN + len {
        return None;
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    // Sequence must be strictly consecutive within one log image: appends
    // after a checkpoint continue from the checkpoint's number.
    if last_seq != 0 && seq != last_seq + 1 {
        return None;
    }
    if seq == 0 {
        return None;
    }
    let mut crc_input = Vec::with_capacity(8 + len);
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return None;
    }
    Some((seq, payload, HEADER_LEN + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn boxed(disk: &MemStorage) -> Box<dyn Storage> {
        Box::new(disk.clone())
    }

    #[test]
    fn append_and_replay_round_trip() {
        let disk = MemStorage::new();
        let mut wal = Wal::create(boxed(&disk)).unwrap();
        assert_eq!(wal.append(b"first").unwrap(), 1);
        assert_eq!(wal.append(b"second").unwrap(), 2);
        assert_eq!(wal.append(b"").unwrap(), 3); // empty payloads are legal

        let (wal2, replay) = Wal::open(boxed(&disk)).unwrap();
        assert_eq!(replay.payloads, vec![b"first".to_vec(), b"second".to_vec(), Vec::new()]);
        assert_eq!(replay.torn_records, 0);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(wal2.next_seq(), 4);
    }

    #[test]
    fn rewrite_truncates_but_sequence_keeps_counting() {
        let disk = MemStorage::new();
        let mut wal = Wal::create(boxed(&disk)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        let ckpt_seq = wal.rewrite(b"checkpoint").unwrap();
        assert_eq!(ckpt_seq, 3);
        wal.append(b"tail").unwrap();

        let (wal2, replay) = Wal::open(boxed(&disk)).unwrap();
        assert_eq!(replay.payloads, vec![b"checkpoint".to_vec(), b"tail".to_vec()]);
        assert_eq!(replay.torn_records, 0);
        assert_eq!(wal2.next_seq(), 5);
    }

    #[test]
    fn torn_write_matrix_every_truncation_of_the_final_record() {
        // Build a log of three records, then chop the image at every byte
        // boundary inside the final record. Replay must never panic, must
        // keep the first two records intact, and must report the tail.
        let disk = MemStorage::new();
        let mut wal = Wal::create(boxed(&disk)).unwrap();
        wal.append(b"keep-me-1").unwrap();
        wal.append(b"keep-me-2").unwrap();
        let full_before = disk.snapshot().len();
        wal.append(b"the record that tears").unwrap();
        let full = disk.snapshot();

        for cut in full_before..full.len() {
            let torn_disk = MemStorage::new();
            torn_disk.set(full[..cut].to_vec());
            let (wal2, replay) = Wal::open(boxed(&torn_disk)).unwrap();
            assert_eq!(
                replay.payloads,
                vec![b"keep-me-1".to_vec(), b"keep-me-2".to_vec()],
                "cut at byte {cut}"
            );
            if cut == full_before {
                // Clean truncation at the record boundary: the last record
                // simply never made it to disk. Not torn.
                assert_eq!(replay.torn_records, 0, "cut at boundary is clean");
            } else {
                assert_eq!(replay.torn_records, 1, "cut at byte {cut}");
                assert_eq!(replay.torn_bytes, (cut - full_before) as u64);
            }
            // The reopened log appends after the intact prefix.
            assert_eq!(wal2.next_seq(), 3);
        }
    }

    #[test]
    fn bit_flips_in_the_final_record_are_detected() {
        let disk = MemStorage::new();
        let mut wal = Wal::create(boxed(&disk)).unwrap();
        wal.append(b"stable").unwrap();
        let prefix_len = disk.snapshot().len();
        wal.append(b"flippable").unwrap();
        let full = disk.snapshot();

        for byte in prefix_len..full.len() {
            let mut corrupted = full.clone();
            corrupted[byte] ^= 0x01;
            let torn_disk = MemStorage::new();
            torn_disk.set(corrupted);
            let (_, replay) = Wal::open(boxed(&torn_disk)).unwrap();
            // Either the corrupt record is rejected (flip in record 2) —
            // never silently accepted with altered content.
            assert_eq!(replay.payloads[0], b"stable".to_vec(), "flip at byte {byte}");
            if replay.payloads.len() > 1 {
                panic!("corrupt record at byte {byte} was accepted");
            }
            assert_eq!(replay.torn_records, 1);
        }
    }

    #[test]
    fn create_erases_prior_content() {
        let disk = MemStorage::new();
        disk.set(b"old garbage".to_vec());
        let wal = Wal::create(boxed(&disk)).unwrap();
        assert_eq!(disk.snapshot(), Vec::<u8>::new());
        assert_eq!(wal.next_seq(), 1);
        assert_eq!(wal.records_written(), 0);
    }

    #[test]
    fn obs_counters_track_appends_and_checkpoints() {
        let obs = Collector::wall();
        let disk = MemStorage::new();
        let mut wal = Wal::create(boxed(&disk)).unwrap();
        wal.bind_obs(&obs);
        wal.append(b"x").unwrap();
        wal.append(b"y").unwrap();
        wal.rewrite(b"ckpt").unwrap();
        assert_eq!(obs.registry().counter_value("wal.appends"), Some(2));
        assert_eq!(obs.registry().counter_value("wal.checkpoints"), Some(1));
        let bytes = obs.registry().counter_value("wal.bytes").unwrap();
        assert_eq!(bytes, (HEADER_LEN as u64) * 3 + 1 + 1 + 4);
    }

    #[test]
    fn sequence_break_is_treated_as_torn() {
        // Splice two independently-created logs together: the second log's
        // records restart at seq 1, which must read as a break, not as a
        // valid continuation.
        let a = MemStorage::new();
        let mut wal_a = Wal::create(boxed(&a)).unwrap();
        wal_a.append(b"log-a-1").unwrap();
        wal_a.append(b"log-a-2").unwrap();
        let b = MemStorage::new();
        let mut wal_b = Wal::create(boxed(&b)).unwrap();
        wal_b.append(b"log-b-1").unwrap();

        let spliced = MemStorage::new();
        let mut bytes = a.snapshot();
        bytes.extend_from_slice(&b.snapshot());
        spliced.set(bytes);

        let (_, replay) = Wal::open(boxed(&spliced)).unwrap();
        assert_eq!(replay.payloads, vec![b"log-a-1".to_vec(), b"log-a-2".to_vec()]);
        assert_eq!(replay.torn_records, 1);
    }
}
