//! Storage backends for the WAL.
//!
//! The log itself ([`crate::wal::Wal`]) only needs three operations: read
//! everything, append bytes, and atomically replace the whole content
//! (checkpoint truncation). [`MemStorage`] backs the simulator — cloning the
//! handle clones a *pointer* to the same byte buffer, so the "disk" survives
//! dropping the warehouse that wrote to it, which is exactly the property a
//! kill/restart test needs. [`FileStorage`] backs the CLI with a real file,
//! using write-temp-then-rename for the replace so a crash mid-checkpoint
//! leaves either the old log or the new one, never a hybrid.

use std::cell::RefCell;
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::rc::Rc;

/// An I/O failure from a storage backend. `MemStorage` never produces one;
/// `FileStorage` wraps `std::io` errors.
#[derive(Debug, Clone)]
pub struct StorageError(pub String);

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.0)
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError(e.to_string())
    }
}

/// Where WAL bytes live. Object-safe so `Wal` can hold a `Box<dyn Storage>`.
pub trait Storage: fmt::Debug {
    /// The full current content of the log. A missing file reads as empty.
    fn read_all(&self) -> Result<Vec<u8>, StorageError>;
    /// Append `bytes` at the end.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
    /// Atomically replace the full content with `bytes`.
    fn replace(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
    /// Current length in bytes.
    fn len(&self) -> Result<u64, StorageError>;
    /// True when the log holds no bytes.
    fn is_empty(&self) -> Result<bool, StorageError> {
        Ok(self.len()? == 0)
    }
    /// Clone into a new box (lets `Wal` itself be `Clone`).
    fn box_clone(&self) -> Box<dyn Storage>;
}

impl Clone for Box<dyn Storage> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// In-memory storage with *shared-buffer* clone semantics: every clone of a
/// `MemStorage` reads and writes the same underlying bytes. The simulator
/// keeps one handle as "the disk" and hands another to the warehouse; when
/// the warehouse is dropped (killed), the driver's handle still holds
/// everything that was flushed.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    buf: Rc<RefCell<Vec<u8>>>,
}

impl MemStorage {
    /// A fresh, empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A raw copy of the current bytes (for torn-write tests that truncate
    /// and corrupt at arbitrary offsets).
    pub fn snapshot(&self) -> Vec<u8> {
        self.buf.borrow().clone()
    }

    /// Overwrite the content with arbitrary bytes (torn-write injection).
    pub fn set(&self, bytes: Vec<u8>) {
        *self.buf.borrow_mut() = bytes;
    }

    /// Truncate the content to `len` bytes, simulating a partial flush.
    pub fn truncate(&self, len: usize) {
        self.buf.borrow_mut().truncate(len);
    }
}

impl Storage for MemStorage {
    fn read_all(&self) -> Result<Vec<u8>, StorageError> {
        Ok(self.buf.borrow().clone())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.buf.borrow_mut().extend_from_slice(bytes);
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        *self.buf.borrow_mut() = bytes.to_vec();
        Ok(())
    }

    fn len(&self) -> Result<u64, StorageError> {
        Ok(self.buf.borrow().len() as u64)
    }

    fn box_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

/// File-backed storage for the CLI's `checkpoint`/`recover` commands.
///
/// Appends open the file in append mode each time (the WAL batches a whole
/// record per call, so syscall count is one per commit); `replace` writes a
/// sibling temp file and renames it over the log, the standard
/// atomic-replace idiom.
#[derive(Debug, Clone)]
pub struct FileStorage {
    path: PathBuf,
}

impl FileStorage {
    /// Storage at `path`. The file need not exist yet — an absent file reads
    /// as an empty log.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn read_all(&self) -> Result<Vec<u8>, StorageError> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn len(&self) -> Result<u64, StorageError> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn box_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_clone_shares_the_disk() {
        let disk = MemStorage::new();
        let mut warehouse_handle: Box<dyn Storage> = Box::new(disk.clone());
        warehouse_handle.append(b"abc").unwrap();
        drop(warehouse_handle); // the process dies...
        assert_eq!(disk.snapshot(), b"abc"); // ...the disk survives.
        assert_eq!(disk.len().unwrap(), 3);
    }

    #[test]
    fn mem_replace_and_truncate() {
        let mut disk = MemStorage::new();
        disk.append(b"0123456789").unwrap();
        disk.truncate(4);
        assert_eq!(disk.read_all().unwrap(), b"0123");
        disk.replace(b"xy").unwrap();
        assert_eq!(disk.read_all().unwrap(), b"xy");
        assert!(!disk.is_empty().unwrap());
    }

    #[test]
    fn file_storage_round_trip() {
        let dir = std::env::temp_dir().join(format!("dyno-durable-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);

        let mut fs = FileStorage::new(&path);
        assert_eq!(fs.read_all().unwrap(), Vec::<u8>::new());
        assert_eq!(fs.len().unwrap(), 0);
        fs.append(b"hello ").unwrap();
        fs.append(b"world").unwrap();
        assert_eq!(fs.read_all().unwrap(), b"hello world");
        fs.replace(b"fresh").unwrap();
        assert_eq!(fs.read_all().unwrap(), b"fresh");
        assert_eq!(fs.len().unwrap(), 5);

        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
