//! # dyno-durable — the warehouse's write-ahead log
//!
//! PR 3 made the *sources and the network* hostile; this crate makes the
//! warehouse process itself killable. It provides the three ingredients the
//! view layer's commit protocol is built from, with zero external
//! dependencies (the workspace builds offline):
//!
//! * [`codec`] — a manual little-endian binary codec ([`Enc`]/[`Dec`]).
//!   Every recovery-relevant type in the workspace serializes through it by
//!   hand; there is no serde and no reflection, so the wire format is exactly
//!   what the code says it is.
//! * [`wal::Wal`] — an append-only log of self-describing records: magic,
//!   length prefix, sequence number, and a CRC-32 over the sequenced
//!   payload. Replay stops at the first torn or corrupt record and reports
//!   how much tail it discarded — a half-written record after a power cut is
//!   indistinguishable from garbage and must never be half-applied.
//! * [`storage::Storage`] — where the bytes live: [`MemStorage`] is a
//!   shared in-memory "disk" for tests and the crash simulator (the handle
//!   survives dropping the warehouse that wrote through it, exactly like a
//!   disk survives the process), [`FileStorage`] appends to a real file with
//!   atomic rewrite-via-rename for checkpoints.
//!
//! The record *contents* (checkpoints, admitted messages, intents, applied
//! deltas) are defined by the crates that own the state — see
//! `dyno_relational::wire`, `dyno_source::wire`, `dyno_core::wire`, and
//! `dyno_view::wal` — keeping this crate model-independent.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod storage;
pub mod wal;

pub use codec::{Dec, Enc, WireError};
pub use crc::crc32;
pub use storage::{FileStorage, MemStorage, Storage, StorageError};
pub use wal::{Replay, Wal, WalError};
