//! The command interpreter behind `dyno-cli`: a tiny warehouse shell.
//!
//! Separated from `main.rs` so every command is unit-testable: the
//! interpreter takes one line and returns the text to print (or an error
//! message — the shell never crashes on bad input).

use std::fmt::Write as _;

use dyno_core::Strategy;
use dyno_durable::FileStorage;
use dyno_obs::{Collector, Sampler, SloPolicy, StalenessTracker};
use dyno_relational::{
    parse_query, AttrType, Catalog, DataUpdate, Delta, Schema, SchemaChange, SourceUpdate, Tuple,
    Value,
};
use dyno_source::{SourceId, SourceServer, SourceSpace};
use dyno_view::{DurableLog, InProcessPort, SourcePort, ViewDefinition, Warehouse};

/// Interactive state: the source space (behind a port) plus the warehouse.
pub struct Repl {
    port: InProcessPort,
    warehouse: Warehouse,
    initialized: bool,
    /// Per-view staleness lanes (`slo` command); lanes are registered by
    /// `init`, commits/refreshes flow in from `insert`/`run`/`step`.
    tracker: StalenessTracker,
    /// Registry time-series sampling (`series` command); off until
    /// `series on`.
    sampler: Option<Sampler>,
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

/// Counters the WAL and recovery paths write lazily; registered up front so
/// `stats` always surfaces them (a session that never power-cut shows
/// `wal.power_cuts: 0` rather than omitting the line).
const DURABILITY_COUNTERS: [&str; 7] = [
    "wal.appends",
    "wal.bytes",
    "wal.checkpoints",
    "wal.power_cuts",
    "recover.replayed",
    "recover.torn_records",
    "recover.reparked_intents",
];

/// Delta-execution and shared-subplan counters, same discipline as
/// [`DURABILITY_COUNTERS`]: the warehouse samples `exec.*` from the
/// relational layer's thread-locals and bumps `subplan.*` on cache
/// hits/misses, but a session that never maintains anything should still
/// show them at zero in `stats`.
const EXEC_COUNTERS: [&str; 8] = [
    "exec.rows_scanned",
    "exec.index_probes",
    "exec.index_join_steps",
    "exec.hash_join_steps",
    "exec.cartesian_fallbacks",
    "exec.weights_cancelled",
    "subplan.shared_hits",
    "subplan.shared_misses",
];

impl Repl {
    /// A fresh shell: no sources, no views, pessimistic scheduling.
    /// Lineage capture is on from the start so `explain <id>` works for
    /// every update committed in the session.
    pub fn new() -> Self {
        let obs = Collector::wall().with_lineage(16 * 1024);
        for name in DURABILITY_COUNTERS.iter().chain(EXEC_COUNTERS.iter()) {
            let _ = obs.registry().counter(name);
        }
        let tracker = StalenessTracker::new(512);
        tracker.bind_obs(&obs);
        Repl {
            port: InProcessPort::new(SourceSpace::new()),
            warehouse: Warehouse::new(dyno_source::InfoSpace::new(), Strategy::Pessimistic)
                .with_obs(obs)
                .with_staleness(tracker.clone()),
            initialized: false,
            tracker,
            sampler: None,
        }
    }

    /// The built-in help text.
    pub fn help() -> &'static str {
        "commands:\n\
         \x20 source <name>                         add an autonomous source\n\
         \x20 table <source#> <Name> <col:type,..>  create a relation (types: int,str,float,bool)\n\
         \x20 insert <source#> <Relation> <v,..>    commit a one-row insert\n\
         \x20 delete <source#> <Relation> <v,..>    commit a one-row delete\n\
         \x20 rename <source#> <From> <To>          commit a rename-relation schema change\n\
         \x20 dropattr <source#> <Relation> <Attr>  commit a drop-attribute schema change\n\
         \x20 view <SQL>                            register a view (CREATE VIEW n AS SELECT ...)\n\
         \x20 init                                  materialize all views\n\
         \x20 step                                  run one Dyno scheduling step\n\
         \x20 run                                   run to quiescence\n\
         \x20 sql <SELECT ...>                      ad-hoc query over current source states\n\
         \x20 show                                  views, extents, queue and stats\n\
         \x20 stats                                 metrics registry snapshot (counters, gauges, histograms)\n\
         \x20 explain <id>                          provenance timeline of one committed update\n\
         \x20 checkpoint <path>                     attach a write-ahead log at <path> and snapshot into it\n\
         \x20 recover <path>                        replace the warehouse with one recovered from <path>\n\
         \x20 trace on|off|dump <path>              toggle structured tracing / write the JSONL trace\n\
         \x20 profile on|off|show                   toggle / render the per-operator cost profiler\n\
         \x20 explain-plan <view>                   EXPLAIN ANALYZE tree of one view's maintenance plans\n\
         \x20 slo [<p99_ms> [window_ms]]            set / show the per-view staleness SLO (burn-rate alerts)\n\
         \x20 series on <window_ms> [cap] | off     start/stop registry time-series sampling\n\
         \x20 series [sample|show|dump <path>]      tick / render / export the sampled series\n\
         \x20 help                                  this text\n\
         \x20 quit                                  exit"
    }

    /// Executes one command line; returns the text to display.
    pub fn execute(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(String::new());
        }
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd.to_ascii_lowercase().as_str() {
            "help" => Ok(Repl::help().to_string()),
            "source" => self.cmd_source(rest),
            "table" => self.cmd_table(rest),
            "insert" => self.cmd_dml(rest, true),
            "delete" => self.cmd_dml(rest, false),
            "rename" => self.cmd_rename(rest),
            "dropattr" => self.cmd_dropattr(rest),
            "view" => self.cmd_view(rest),
            "init" => self.cmd_init(),
            "step" => self.cmd_step(),
            "run" => self.cmd_run(),
            "sql" => self.cmd_sql(rest),
            "show" => Ok(self.render_state()),
            "stats" => Ok(self.cmd_stats()),
            "explain" => self.cmd_explain(rest),
            "explain-plan" => self.cmd_explain_plan(rest),
            "profile" => self.cmd_profile(rest),
            "checkpoint" => self.cmd_checkpoint(rest),
            "recover" => self.cmd_recover(rest),
            "trace" => self.cmd_trace(rest),
            "slo" => self.cmd_slo(rest),
            "series" => self.cmd_series(rest),
            other => Err(format!("unknown command `{other}` — try `help`")),
        }
    }

    fn cmd_source(&mut self, name: &str) -> Result<String, String> {
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err("usage: source <name>".into());
        }
        let id = SourceId(self.port.space().servers().len() as u32);
        self.port.space_mut().add_server(SourceServer::new(id, name.to_string(), Catalog::new()));
        Ok(format!("source #{} `{name}` added", id.0))
    }

    /// Records the source-commit provenance hop (the `InProcessPort` has no
    /// collector of its own, unlike the simulator's port).
    fn note_commit(&self, msg: &dyno_source::UpdateMessage) {
        self.warehouse.obs().prov(
            msg.id.0,
            dyno_obs::stage::COMMIT,
            &[
                dyno_obs::field("source", msg.source.0),
                dyno_obs::field("version", msg.source_version),
            ],
        );
        self.tracker.note_commit(msg.source.0, msg.source_version, self.warehouse.obs().now_us());
    }

    /// Advances the telemetry clocks past `now`: closes due sampler and
    /// staleness windows. Called after every scheduling command so the
    /// series stay fresh without a background thread.
    fn tick_telemetry(&mut self) {
        let now = self.warehouse.obs().now_us();
        self.tracker.maybe_sample(now);
        if let Some(s) = &mut self.sampler {
            s.maybe_sample(now);
        }
    }

    fn parse_source(&self, token: &str) -> Result<SourceId, String> {
        let idx: u32 = token.parse().map_err(|_| format!("`{token}` is not a source number"))?;
        if (idx as usize) < self.port.space().servers().len() {
            Ok(SourceId(idx))
        } else {
            Err(format!("no source #{idx} (add one with `source <name>`)"))
        }
    }

    fn cmd_table(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let (src, name, cols) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(n), Some(c)) => (s, n, c),
            _ => return Err("usage: table <source#> <Name> <col:type,...>".into()),
        };
        let source = self.parse_source(src)?;
        let mut attrs = Vec::new();
        for spec in cols.split(',') {
            let (col, ty) = spec
                .split_once(':')
                .ok_or_else(|| format!("column spec `{spec}` must be name:type"))?;
            let ty = match ty.to_ascii_lowercase().as_str() {
                "int" => AttrType::Int,
                "str" => AttrType::Str,
                "float" => AttrType::Float,
                "bool" => AttrType::Bool,
                other => return Err(format!("unknown type `{other}`")),
            };
            attrs.push((col.to_string(), ty));
        }
        let schema = Schema::new(
            name,
            attrs.into_iter().map(|(n, t)| dyno_relational::Attribute::new(n, t)).collect(),
        )
        .map_err(|e| e.to_string())?;
        // Creating a relation is itself an (additive) schema change.
        let msg = self
            .port
            .commit(source, SourceUpdate::Schema(SchemaChange::CreateRelation { schema }))
            .map_err(|e| e.to_string())?;
        self.note_commit(&msg);
        Ok(format!("relation `{name}` created at source #{}", source.0))
    }

    fn parse_values(&self, source: SourceId, relation: &str, csv: &str) -> Result<Tuple, String> {
        let schema = self
            .port
            .space()
            .server(source)
            .catalog()
            .get(relation)
            .map_err(|e| e.to_string())?
            .schema()
            .clone();
        let raw: Vec<&str> = csv.split(',').collect();
        if raw.len() != schema.arity() {
            return Err(format!(
                "`{relation}` has {} columns, got {} values",
                schema.arity(),
                raw.len()
            ));
        }
        let mut vals = Vec::with_capacity(raw.len());
        for (token, attr) in raw.iter().zip(schema.attrs()) {
            let v = match attr.ty {
                AttrType::Int => Value::from(
                    token.parse::<i64>().map_err(|_| format!("`{token}` is not an int"))?,
                ),
                AttrType::Float => Value::float(
                    token.parse::<f64>().map_err(|_| format!("`{token}` is not a float"))?,
                ),
                AttrType::Bool => Value::Bool(
                    token.parse::<bool>().map_err(|_| format!("`{token}` is not a bool"))?,
                ),
                AttrType::Str => Value::str(*token),
            };
            vals.push(v);
        }
        Ok(Tuple::new(vals))
    }

    fn cmd_dml(&mut self, rest: &str, insert: bool) -> Result<String, String> {
        let mut parts = rest.splitn(3, char::is_whitespace);
        let (src, rel, vals) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(r), Some(v)) => (s, r, v.trim()),
            _ => return Err("usage: insert|delete <source#> <Relation> <v1,v2,...>".into()),
        };
        let source = self.parse_source(src)?;
        let tuple = self.parse_values(source, rel, vals)?;
        let schema = self
            .port
            .space()
            .server(source)
            .catalog()
            .get(rel)
            .map_err(|e| e.to_string())?
            .schema()
            .clone();
        let delta =
            if insert { Delta::inserts(schema, [tuple]) } else { Delta::deletes(schema, [tuple]) }
                .map_err(|e| e.to_string())?;
        let msg = self
            .port
            .commit(source, SourceUpdate::Data(DataUpdate::new(delta)))
            .map_err(|e| e.to_string())?;
        self.note_commit(&msg);
        Ok(format!("committed {msg}"))
    }

    fn cmd_rename(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [src, from, to] = parts.as_slice() else {
            return Err("usage: rename <source#> <From> <To>".into());
        };
        let source = self.parse_source(src)?;
        let msg = self
            .port
            .commit(
                source,
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: from.to_string(),
                    to: to.to_string(),
                }),
            )
            .map_err(|e| e.to_string())?;
        self.note_commit(&msg);
        Ok(format!("committed {msg}"))
    }

    fn cmd_dropattr(&mut self, rest: &str) -> Result<String, String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [src, rel, attr] = parts.as_slice() else {
            return Err("usage: dropattr <source#> <Relation> <Attr>".into());
        };
        let source = self.parse_source(src)?;
        let msg = self
            .port
            .commit(
                source,
                SourceUpdate::Schema(SchemaChange::DropAttribute {
                    relation: rel.to_string(),
                    attr: attr.to_string(),
                }),
            )
            .map_err(|e| e.to_string())?;
        self.note_commit(&msg);
        Ok(format!("committed {msg}"))
    }

    fn cmd_view(&mut self, sql: &str) -> Result<String, String> {
        if self.initialized {
            return Err("views must be registered before `init`".into());
        }
        let n = self.warehouse.view_count();
        let view = ViewDefinition::parse(sql, &format!("View{n}")).map_err(|e| e.to_string())?;
        let name = view.name.clone();
        self.warehouse.add_view(view);
        Ok(format!("view `{name}` registered (initialize with `init`)"))
    }

    fn cmd_init(&mut self) -> Result<String, String> {
        self.warehouse.initialize(&mut self.port).map_err(|e| e.to_string())?;
        self.initialized = true;
        let mut out = String::new();
        for i in 0..self.warehouse.view_count() {
            let _ = writeln!(
                out,
                "materialized `{}` [{} tuples]",
                self.warehouse.view(i).name,
                self.warehouse.mv(i).len()
            );
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_step(&mut self) -> Result<String, String> {
        self.require_init()?;
        let outcome = self.warehouse.step(&mut self.port).map_err(|e| e.to_string())?;
        self.tick_telemetry();
        Ok(format!("{outcome:?}"))
    }

    fn cmd_run(&mut self) -> Result<String, String> {
        self.require_init()?;
        let steps =
            self.warehouse.run_to_quiescence(&mut self.port, 10_000).map_err(|e| e.to_string())?;
        self.tick_telemetry();
        Ok(format!("quiesced after {steps} step(s)"))
    }

    fn cmd_sql(&mut self, sql: &str) -> Result<String, String> {
        let query = parse_query(sql).map_err(|e| e.to_string())?;
        let result = self.port.execute(&query, &[]).map_err(|e| e.to_string())?;
        let mut out = format!("({})\n", result.cols.join(", "));
        for (t, c) in result.rows.sorted_entries().into_iter().take(50) {
            if c == 1 {
                let _ = writeln!(out, "  {t}");
            } else {
                let _ = writeln!(out, "  {t} x{c}");
            }
        }
        let _ = write!(out, "{} tuple(s)", result.weight());
        Ok(out)
    }

    fn cmd_stats(&self) -> String {
        let mut out = self.warehouse.obs().metrics_text().trim_end().to_string();
        match self.warehouse.last_error() {
            Some(e) => {
                let _ = write!(out, "\nlast_error: {e}");
            }
            None => out.push_str("\nlast_error: none"),
        }
        out
    }

    fn cmd_explain(&self, rest: &str) -> Result<String, String> {
        let id: u64 = rest.trim().parse().map_err(|_| {
            "usage: explain <update-id> (ids are printed by insert/delete/rename/dropattr)"
                .to_string()
        })?;
        let obs = self.warehouse.obs();
        Ok(dyno_obs::forensics::explain_text(id, &obs.explain(id)).trim_end().to_string())
    }

    /// `profile on|off|show` — the per-operator cost profiler. `show`
    /// renders every captured plan; `explain-plan <view>` narrows to one.
    fn cmd_profile(&mut self, rest: &str) -> Result<String, String> {
        let obs = self.warehouse.obs();
        match rest.trim() {
            "" => Ok(format!(
                "profiler is {} ({} plan(s) captured)",
                if obs.profile_on() { "on" } else { "off" },
                obs.profile_snapshot().plan_count()
            )),
            "on" => {
                obs.set_profile(true);
                Ok("profiler on — maintenance work now records per-operator costs".into())
            }
            "off" => {
                obs.set_profile(false);
                Ok("profiler off (captured plans kept; `profile show` still renders them)".into())
            }
            "show" => Ok(obs.profile_text(None).trim_end().to_string()),
            other => Err(format!("unknown profile subcommand `{other}` — on, off or show")),
        }
    }

    /// `explain-plan <view>` — the EXPLAIN ANALYZE tree of one view's
    /// maintenance plans (one plan per driving relation, plus the
    /// warehouse pipeline plan under the `warehouse` pseudo-view).
    fn cmd_explain_plan(&self, rest: &str) -> Result<String, String> {
        let name = rest.trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err("usage: explain-plan <view> (turn capture on with `profile on`)".into());
        }
        let known = name == "warehouse"
            || (0..self.warehouse.view_count()).any(|i| self.warehouse.view(i).name == name);
        if !known {
            return Err(format!(
                "no view `{name}` (registered views{}; `warehouse` is the pipeline plan)",
                (0..self.warehouse.view_count())
                    .map(|i| format!(" {}", self.warehouse.view(i).name))
                    .collect::<String>()
            ));
        }
        Ok(self.warehouse.obs().profile_text(Some(name)).trim_end().to_string())
    }

    fn cmd_checkpoint(&mut self, rest: &str) -> Result<String, String> {
        let path = rest.trim();
        if path.is_empty() {
            return Err("usage: checkpoint <path>".into());
        }
        self.require_init()?;
        if self.warehouse.umq_bound().is_some() {
            // Checked up front: `with_wal` is a by-value builder, so letting
            // it reject after the swap would drop the live warehouse.
            return Err("cannot attach a WAL to a bounded (shedding) warehouse".into());
        }
        let log = DurableLog::create(Box::new(FileStorage::new(path)))
            .map_err(|e| format!("cannot open log `{path}`: {e}"))?;
        // `with_wal` is a by-value builder; swap the warehouse through it.
        let wh = std::mem::replace(
            &mut self.warehouse,
            Warehouse::new(dyno_source::InfoSpace::new(), Strategy::Pessimistic),
        );
        self.warehouse = wh.with_wal(log).map_err(|e| e.to_string())?;
        Ok(format!("write-ahead log attached, state checkpointed to {path}"))
    }

    fn cmd_recover(&mut self, rest: &str) -> Result<String, String> {
        let path = rest.trim();
        if path.is_empty() {
            return Err("usage: recover <path>".into());
        }
        let info = self.port.space().info().clone();
        let obs = self.warehouse.obs().clone();
        let (wh, report) = Warehouse::recover(Box::new(FileStorage::new(path)), info, obs)
            .map_err(|e| format!("cannot recover from `{path}`: {e}"))?;
        self.warehouse = wh.with_staleness(self.tracker.clone());
        self.initialized = true;
        Ok(format!(
            "recovered {} view(s) from {path}: {} record(s) replayed, {} torn, {} intent(s) re-parked",
            self.warehouse.view_count(),
            report.replayed_records,
            report.torn_records,
            report.reparked_intents
        ))
    }

    fn cmd_trace(&mut self, rest: &str) -> Result<String, String> {
        let obs = self.warehouse.obs();
        let (sub, arg) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        match sub {
            "" => Ok(format!(
                "tracing is {} ({} record(s) buffered)",
                if obs.tracing_on() { "on" } else { "off" },
                obs.trace_records().len()
            )),
            "on" => {
                obs.set_tracing(true);
                Ok("tracing on".into())
            }
            "off" => {
                obs.set_tracing(false);
                Ok("tracing off".into())
            }
            "dump" => {
                let path = arg.trim();
                if path.is_empty() {
                    return Err("usage: trace dump <path>".into());
                }
                let records = obs.trace_records().len();
                std::fs::write(path, obs.trace_jsonl())
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                Ok(format!("{records} trace record(s) written to {path}"))
            }
            other => Err(format!("unknown trace subcommand `{other}` — on, off or dump <path>")),
        }
    }

    fn cmd_slo(&mut self, rest: &str) -> Result<String, String> {
        let rest = rest.trim();
        if rest.is_empty() {
            if self.tracker.view_count() == 0 {
                return Ok("no staleness lanes yet — `init` registers one per view".into());
            }
            let now = self.warehouse.obs().now_us();
            return Ok(self.tracker.render_text(now).trim_end().to_string());
        }
        let usage = || "usage: slo [<p99_ms> [window_ms]]".to_string();
        let mut parts = rest.split_whitespace();
        let p99_ms: u64 = parts.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
        let window_ms: u64 = match parts.next() {
            Some(t) => t.parse().map_err(|_| usage())?,
            None => 1_000,
        };
        if p99_ms == 0 || window_ms == 0 {
            return Err("p99_ms and window_ms must be positive".into());
        }
        self.tracker.set_slo(SloPolicy::target(p99_ms * 1_000));
        self.tracker.set_cadence(window_ms * 1_000, self.warehouse.obs().now_us());
        Ok(format!(
            "staleness SLO set: p99 ≤ {p99_ms}ms over {window_ms}ms windows \
             (burn-rate: warn at 2/3 bad short windows, page at 3/3 short + 6/12 long)"
        ))
    }

    fn cmd_series(&mut self, rest: &str) -> Result<String, String> {
        let (sub, arg) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        let now = self.warehouse.obs().now_us();
        match sub {
            "" => Ok(match &self.sampler {
                Some(s) => format!(
                    "sampling every {}ms: {} window(s), {} series",
                    s.window_us() / 1_000,
                    s.windows(),
                    s.series_count()
                ),
                None => "sampling is off — start with `series on <window_ms> [cap]`".into(),
            }),
            "on" => {
                let usage = || "usage: series on <window_ms> [cap]".to_string();
                let mut parts = arg.split_whitespace();
                let window_ms: u64 =
                    parts.next().ok_or_else(usage)?.parse().map_err(|_| usage())?;
                if window_ms == 0 {
                    return Err("window_ms must be positive".into());
                }
                let cap: usize = match parts.next() {
                    Some(t) => t.parse().map_err(|_| usage())?,
                    None => 512,
                };
                let registry = self.warehouse.obs().registry();
                self.sampler = Some(Sampler::new(registry, window_ms * 1_000, cap, now));
                Ok(format!("sampling every {window_ms}ms ({cap} windows retained)"))
            }
            "off" => {
                self.sampler = None;
                Ok("sampling off".into())
            }
            "sample" => match &mut self.sampler {
                Some(s) => {
                    s.sample_now(now);
                    self.tracker.sample_now(now);
                    Ok(format!("sampled at {now}us ({} window(s))", s.windows()))
                }
                None => Err("sampling is off — start with `series on <window_ms>`".into()),
            },
            "show" => match &self.sampler {
                Some(s) => Ok(s.render_text().trim_end().to_string()),
                None => Err("sampling is off — start with `series on <window_ms>`".into()),
            },
            "dump" => {
                let path = arg.trim();
                if path.is_empty() {
                    return Err("usage: series dump <path>".into());
                }
                let Some(s) = &self.sampler else {
                    return Err("sampling is off — start with `series on <window_ms>`".into());
                };
                let mut doc = s.to_json();
                doc.push('\n');
                std::fs::write(path, doc).map_err(|e| format!("cannot write `{path}`: {e}"))?;
                Ok(format!("{} window(s) written to {path}", s.windows()))
            }
            other => {
                Err(format!("unknown series subcommand `{other}` — on, off, sample, show or dump"))
            }
        }
    }

    fn require_init(&self) -> Result<(), String> {
        if self.initialized {
            Ok(())
        } else {
            Err("run `init` first".into())
        }
    }

    fn render_state(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "sources:");
        for s in self.port.space().servers() {
            let rels: Vec<&str> = s.catalog().relation_names().collect();
            let _ = writeln!(
                out,
                "  #{} {} v{} [{}]",
                s.id().0,
                s.name(),
                s.version(),
                rels.join(", ")
            );
        }
        let _ = writeln!(out, "views:");
        for i in 0..self.warehouse.view_count() {
            let _ = writeln!(
                out,
                "  {} [{} tuples, {} aborts]\n    {}",
                self.warehouse.view(i).name,
                self.warehouse.mv(i).len(),
                self.warehouse.stats(i).aborts,
                self.warehouse.view(i)
            );
        }
        let _ = write!(out, "scheduler: {:?}", self.warehouse.dyno_stats());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(repl: &mut Repl, cmd: &str) -> String {
        repl.execute(cmd).unwrap_or_else(|e| panic!("`{cmd}` failed: {e}"))
    }

    /// A full session: build two sources, a view, push a DU and a rename,
    /// and watch the view follow.
    #[test]
    fn end_to_end_session() {
        let mut r = Repl::new();
        ok(&mut r, "source retailer");
        ok(&mut r, "source library");
        ok(&mut r, "table 0 Item sid:int,book:str");
        ok(&mut r, "table 1 Catalog title:str,publisher:str");
        ok(&mut r, "insert 0 Item 1,Databases");
        ok(&mut r, "insert 1 Catalog Databases,Prentice");
        ok(
            &mut r,
            "view CREATE VIEW V AS SELECT Item.book, Catalog.publisher \
             FROM Item, Catalog WHERE Item.book = Catalog.title",
        );
        let init = ok(&mut r, "init");
        assert!(init.contains("[1 tuples]"), "{init}");

        ok(&mut r, "insert 1 Catalog Streams,Stanford");
        ok(&mut r, "insert 0 Item 2,Streams");
        ok(&mut r, "rename 1 Catalog Books");
        let run = ok(&mut r, "run");
        assert!(run.contains("quiesced"), "{run}");

        let show = ok(&mut r, "show");
        assert!(show.contains("V [2 tuples"), "{show}");
        assert!(show.contains("Books.title"), "view definition followed the rename: {show}");
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let mut r = Repl::new();
        assert!(r.execute("bogus").is_err());
        assert!(r.execute("table 0 X a:int").unwrap_err().contains("no source #0"));
        assert!(r.execute("step").unwrap_err().contains("init"));
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        assert!(r.execute("insert 0 T notanint").unwrap_err().contains("not an int"));
        assert!(r.execute("insert 0 T 1,2").unwrap_err().contains("1 columns"));
        assert!(r.execute("view SELECT nope FROM T").is_err());
    }

    #[test]
    fn adhoc_sql_queries_current_state() {
        let mut r = Repl::new();
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int,b:str");
        ok(&mut r, "insert 0 T 1,x");
        ok(&mut r, "insert 0 T 2,y");
        let out = ok(&mut r, "sql SELECT T.b FROM T WHERE T.a >= 2");
        assert!(out.contains("'y'"));
        assert!(out.contains("1 tuple(s)"));
    }

    #[test]
    fn delete_and_show() {
        let mut r = Repl::new();
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "insert 0 T 5");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        ok(&mut r, "delete 0 T 5");
        ok(&mut r, "run");
        let show = ok(&mut r, "show");
        assert!(show.contains("W [0 tuples"), "{show}");
    }

    #[test]
    fn help_lists_every_command() {
        for cmd in [
            "source",
            "table",
            "insert",
            "delete",
            "rename",
            "dropattr",
            "view",
            "init",
            "step",
            "run",
            "sql",
            "show",
            "stats",
            "explain",
            "explain-plan",
            "profile",
            "checkpoint",
            "recover",
            "trace",
            "slo",
            "series",
            "quit",
        ] {
            assert!(Repl::help().contains(cmd), "help is missing `{cmd}`");
        }
    }

    /// `stats` snapshots the metrics registry the warehouse writes into.
    #[test]
    fn stats_reflect_maintenance_work() {
        let mut r = Repl::new();
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        ok(&mut r, "insert 0 T 1");
        ok(&mut r, "run");
        let stats = ok(&mut r, "stats");
        assert!(stats.contains("view.commits"), "{stats}");
        assert!(stats.contains("dyno.steps"), "{stats}");
        assert!(stats.contains("last_error: none"), "healthy session: {stats}");
    }

    /// The durability counters show up (zero-valued) even in a session that
    /// never attached a WAL — `wal.power_cuts: 0` is a statement, not an
    /// omission.
    #[test]
    fn stats_always_surface_durability_counters() {
        let mut r = Repl::new();
        let stats = ok(&mut r, "stats");
        for name in DURABILITY_COUNTERS.iter().chain(EXEC_COUNTERS.iter()) {
            assert!(stats.contains(name), "stats is missing `{name}`: {stats}");
        }
    }

    /// `profile on` captures per-operator plans during maintenance;
    /// `profile show` and `explain-plan <view>` render them; `profile off`
    /// stops capture but keeps what was recorded.
    #[test]
    fn profile_capture_and_explain_plan() {
        let mut r = Repl::new();
        assert!(ok(&mut r, "profile").contains("off"));
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        ok(&mut r, "profile on");
        ok(&mut r, "insert 0 T 1");
        ok(&mut r, "run");
        assert!(ok(&mut r, "profile").contains("on"));
        let show = ok(&mut r, "profile show");
        assert!(show.contains("plan W"), "SWEEP plan captured: {show}");
        assert!(show.contains("phase totals:"), "{show}");
        let plan = ok(&mut r, "explain-plan W");
        assert!(plan.contains("delta_select") || plan.contains("delta_project"), "{plan}");
        let pipeline = ok(&mut r, "explain-plan warehouse");
        assert!(pipeline.contains("classify"), "pipeline plan captured: {pipeline}");
        let err = r.execute("explain-plan NoSuch").unwrap_err();
        assert!(err.contains("no view `NoSuch`") && err.contains('W'), "{err}");
        assert!(r.execute("explain-plan").unwrap_err().contains("usage"));
        assert!(r.execute("profile bogus").is_err());
        ok(&mut r, "profile off");
        assert!(ok(&mut r, "profile show").contains("plan W"), "plans survive `off`");
    }

    /// `explain <id>` reconstructs a committed update's provenance timeline
    /// from source commit to view application.
    #[test]
    fn explain_traces_an_update_end_to_end() {
        let mut r = Repl::new();
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        let committed = ok(&mut r, "insert 0 T 7");
        // "committed u<id>@..." — pull the id out of the message.
        let id: u64 = committed
            .split('u')
            .nth(1)
            .and_then(|s| s.split('@').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no update id in `{committed}`"));
        ok(&mut r, "run");
        let out = ok(&mut r, &format!("explain {id}"));
        for hop in ["commit", "admit", "intent", "applied", "extent"] {
            assert!(out.contains(hop), "missing `{hop}` in: {out}");
        }
        // Unknown ids and junk input are messages, not panics.
        assert!(ok(&mut r, "explain 999999").contains("no lineage"));
        assert!(r.execute("explain nope").unwrap_err().contains("usage"));
    }

    /// A warehouse checkpointed to a file comes back with its extent,
    /// version vector, and pending queue after a simulated kill — even
    /// though the sources moved on in the meantime.
    #[test]
    fn checkpoint_then_recover_survives_a_kill() {
        let path = std::env::temp_dir().join("dyno_cli_recover_test.wal");
        std::fs::remove_file(&path).ok();
        let mut r = Repl::new();
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "insert 0 T 1");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        let out = ok(&mut r, &format!("checkpoint {}", path.display()));
        assert!(out.contains("checkpointed"), "{out}");
        // Committed at the source but not yet maintained — the message is
        // still parked in the port when the warehouse dies.
        ok(&mut r, "insert 0 T 2");
        assert!(ok(&mut r, "show").contains("W [1 tuples"));

        // "Kill" the warehouse: drop it, keep the sources, recover from disk.
        let port = std::mem::replace(&mut r.port, InProcessPort::new(SourceSpace::new()));
        let mut r2 = Repl::new();
        r2.port = port;
        let out = ok(&mut r2, &format!("recover {}", path.display()));
        assert!(out.contains("recovered 1 view(s)"), "{out}");
        assert!(out.contains("0 torn"), "{out}");
        ok(&mut r2, "run");
        assert!(ok(&mut r2, "show").contains("W [2 tuples"), "caught back up after recovery");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_and_recover_validate_input() {
        let mut r = Repl::new();
        assert!(r.execute("checkpoint").unwrap_err().contains("usage"));
        assert!(r.execute("recover").unwrap_err().contains("usage"));
        assert!(r.execute("checkpoint /tmp/x.wal").unwrap_err().contains("init"));
        let missing = std::env::temp_dir().join("dyno_cli_no_such.wal");
        std::fs::remove_file(&missing).ok();
        let err = r.execute(&format!("recover {}", missing.display())).unwrap_err();
        assert!(err.contains("cannot recover"), "{err}");
    }

    /// `slo` registers a lane per view at `init`, tracks commit→refresh
    /// staleness through `insert`/`run`, and renders the burn-rate status.
    #[test]
    fn slo_tracks_staleness_lanes() {
        let mut r = Repl::new();
        assert!(ok(&mut r, "slo").contains("no staleness lanes"), "empty before init");
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        let set = ok(&mut r, "slo 5000 1000");
        assert!(set.contains("p99 ≤ 5000ms"), "{set}");
        ok(&mut r, "insert 0 T 1");
        ok(&mut r, "run");
        let status = ok(&mut r, "slo");
        assert!(status.contains('W'), "lane for the view: {status}");
        assert!(status.contains("ok"), "fresh view is inside the SLO: {status}");
        assert!(r.execute("slo nope").unwrap_err().contains("usage"));
        assert!(r.execute("slo 0").unwrap_err().contains("positive"));
    }

    /// `series on` samples the registry; `sample`/`show`/`dump` expose the
    /// windows; `off` stops sampling.
    #[test]
    fn series_sampling_lifecycle() {
        let mut r = Repl::new();
        assert!(ok(&mut r, "series").contains("off"));
        assert!(r.execute("series show").is_err(), "show requires sampling on");
        assert!(r.execute("series on").unwrap_err().contains("usage"));
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        ok(&mut r, "series on 1000 64");
        ok(&mut r, "insert 0 T 1");
        ok(&mut r, "run");
        let sampled = ok(&mut r, "series sample");
        assert!(sampled.contains("window"), "{sampled}");
        let show = ok(&mut r, "series show");
        assert!(show.contains("view.commits"), "maintenance series present: {show}");
        let path = std::env::temp_dir().join("dyno_cli_series_test.json");
        let dump = ok(&mut r, &format!("series dump {}", path.display()));
        assert!(dump.contains("written"), "{dump}");
        let body = std::fs::read_to_string(&path).expect("dump file exists");
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"series\""), "{body}");
        ok(&mut r, "series off");
        assert!(ok(&mut r, "series").contains("off"));
        assert!(r.execute("series bogus").is_err());
    }

    /// `trace on` captures spans; `trace dump` writes them as JSONL;
    /// `trace off` stops capture.
    #[test]
    fn trace_toggle_and_dump() {
        let mut r = Repl::new();
        assert!(ok(&mut r, "trace").contains("off"));
        ok(&mut r, "trace on");
        assert!(ok(&mut r, "trace").contains("on"));
        ok(&mut r, "source s0");
        ok(&mut r, "table 0 T a:int");
        ok(&mut r, "view CREATE VIEW W AS SELECT T.a FROM T");
        ok(&mut r, "init");
        ok(&mut r, "insert 0 T 3");
        ok(&mut r, "run");
        let path = std::env::temp_dir().join("dyno_cli_trace_test.jsonl");
        let dump = ok(&mut r, &format!("trace dump {}", path.display()));
        assert!(dump.contains("written"), "{dump}");
        let body = std::fs::read_to_string(&path).expect("dump file exists");
        std::fs::remove_file(&path).ok();
        assert!(body.lines().count() > 0, "trace must not be empty");
        assert!(body.contains("\"view.maintain\""), "{body}");
        ok(&mut r, "trace off");
        assert!(ok(&mut r, "trace").contains("off"));
        assert!(r.execute("trace bogus").is_err());
        assert!(r.execute("trace dump").is_err());
    }
}
