//! `dyno-cli` — an interactive shell over the Dyno view-maintenance system.
//!
//! ```text
//! $ cargo run -p dyno-cli
//! dyno> source retailer
//! dyno> table 0 Item sid:int,book:str
//! dyno> view CREATE VIEW V AS SELECT Item.book FROM Item
//! dyno> init
//! dyno> insert 0 Item 1,Databases
//! dyno> run
//! dyno> show
//! ```

use std::io::{self, BufRead, Write};

mod repl;

fn main() -> io::Result<()> {
    let mut shell = repl::Repl::new();
    println!("dyno-cli — type `help` for commands, `quit` to exit");
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    loop {
        print!("dyno> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("quit") || trimmed.eq_ignore_ascii_case("exit") {
            break;
        }
        match shell.execute(trimmed) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
