//! Differential property tests for the Z-set execution core: the weighted
//! delta algebra (`ZSet`) must satisfy its group laws with zero-weight
//! cancellation as a type invariant, the delta-only operators must agree
//! exactly with naive reference evaluation, and SWEEP maintenance through
//! the algebraic seed/compensation pipeline must reproduce a full recompute
//! of the view — bit-identically on the indexed and scan execution paths —
//! through seeded trains of concurrent data updates.
//!
//! Cases are drawn from the in-repo seeded PRNG (`dyno::sim::Rng`), so every
//! run replays the same case set and a failure is reproducible.
#![cfg(feature = "proptest")]

use dyno::prelude::*;
use dyno::relational::{delta_join, distinct_delta, eval, ZSet};
use dyno::sim::{build_testbed, Rng};
use dyno::view::sweep_maintain;

/// A random signed bag over 2-column integer tuples: narrow value range so
/// merges actually collide, signed weights so cancellation actually fires.
fn random_zset(rng: &mut Rng) -> ZSet {
    let mut z = ZSet::new();
    for _ in 0..rng.gen_range(0..20usize) {
        let t = Tuple::of([rng.gen_range(0..5i64), rng.gen_range(0..4i64)]);
        let mut w = rng.gen_range(-3..4i64);
        if w == 0 {
            w = 1;
        }
        z.add(t, w);
    }
    z
}

/// The type invariant: no reachable `ZSet` holds a zero-weight entry.
fn assert_no_zero_weights(z: &ZSet, ctx: &str) {
    for (t, w) in z.iter() {
        assert_ne!(w, 0, "{ctx}: zero-weight entry for {t:?} survived");
    }
}

fn merged(a: &ZSet, b: &ZSet) -> ZSet {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// The commutative-group laws of (ZSet, merge, negated) plus the fused and
/// derived operations, all checked for the cancellation invariant.
#[test]
fn zset_group_laws_hold_with_cancellation_invariant() {
    let mut rng = Rng::new(0x25E7_A16);
    for case in 0..200 {
        let (a, b, c) = (random_zset(&mut rng), random_zset(&mut rng), random_zset(&mut rng));

        let ab = merged(&a, &b);
        assert_eq!(ab, merged(&b, &a), "case {case}: merge commutes");
        assert_eq!(merged(&ab, &c), merged(&a, &merged(&b, &c)), "case {case}: merge associates");
        assert_eq!(a.negated().negated(), a, "case {case}: negation is an involution");
        assert!(merged(&a, &a.negated()).is_empty(), "case {case}: a + (−a) cancels to ∅");

        let mut fused = a.clone();
        fused.merge_negated(&b);
        assert_eq!(fused, merged(&a, &b.negated()), "case {case}: merge_negated ≡ merge∘negated");

        let d = a.diff(&b);
        assert_eq!(merged(&d, &b), a, "case {case}: (a − b) + b round-trips");

        for (name, z) in
            [("merge", &ab), ("negated", &a.negated()), ("merge_negated", &fused), ("diff", &d)]
        {
            assert_no_zero_weights(z, &format!("case {case} {name}"));
        }

        let dist = a.distinct();
        assert!(dist.iter().all(|(_, w)| w == 1), "case {case}: distinct weights are 1");
        assert_eq!(dist.distinct(), dist, "case {case}: distinct is idempotent");
    }
}

/// `delta_join` against a naive nested-loop reference over random signed
/// bags, and `distinct_delta` against the recompute identity
/// `distinct(base + δ) = distinct(base) + distinct_delta(base, δ)`.
#[test]
fn delta_operators_match_naive_references() {
    let mut rng = Rng::new(0xD17A_0B5);
    for case in 0..120 {
        let (a, b) = (random_zset(&mut rng), random_zset(&mut rng));

        let fast = delta_join(&a, &[0], &b, &[0]);
        let mut naive = ZSet::new();
        for (ta, wa) in a.iter() {
            for (tb, wb) in b.iter() {
                if ta.get(0) == tb.get(0) {
                    let vals: Vec<Value> =
                        ta.values().iter().chain(tb.values().iter()).cloned().collect();
                    naive.add(Tuple::new(vals), wa * wb);
                }
            }
        }
        assert_eq!(fast, naive, "case {case}: delta_join ≡ nested loop");
        assert_no_zero_weights(&fast, &format!("case {case} delta_join"));

        let (base, delta) = (random_zset(&mut rng), random_zset(&mut rng));
        let incr = merged(&base.distinct(), &distinct_delta(&base, &delta));
        assert_eq!(
            incr,
            merged(&base, &delta).distinct(),
            "case {case}: distinct_delta tracks support crossings"
        );
    }
}

/// A random insert against one testbed relation (key drawn past the seeded
/// range half the time, so some updates join and some don't), or a delete
/// of a row that currently exists.
fn random_testbed_du(
    cfg: &TestbedConfig,
    space: &SourceSpace,
    rng: &mut Rng,
) -> (SourceId, DataUpdate) {
    let rel = rng.gen_range(0..cfg.relation_count());
    let name = format!("R{rel}");
    let sid = space.locate(&name).expect("testbed relation");
    let schema = cfg.schema(rel);
    let extent = space.server(sid).catalog().get(&name).expect("testbed relation");
    if rng.gen_range(0..3u32) > 0 || extent.rows().is_empty() {
        let mut vals = vec![Value::from(rng.gen_range(0..2 * cfg.tuples_per_relation as i64))];
        for _ in 1..schema.arity() {
            vals.push(Value::from(rng.gen_range(0..1_000i64)));
        }
        (sid, DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema")))
    } else {
        let tuples: Vec<Tuple> = extent.rows().iter().map(|(t, _)| t.clone()).collect();
        let victim = tuples[rng.gen_range(0..tuples.len())].clone();
        (sid, DataUpdate::new(Delta::deletes(schema, [victim]).expect("testbed schema")))
    }
}

/// The tentpole differential: maintaining a train of data updates through
/// the algebraic seed → delta-join → compensation pipeline leaves the
/// materialized extent equal to a full recompute after every single update,
/// and the maintained deltas are byte-identical between the indexed and the
/// scan execution paths.
#[test]
fn delta_maintenance_matches_full_recompute_through_du_trains() {
    let mut rng = Rng::new(0x25E7_D1F);
    for case in 0..8 {
        let cfg = TestbedConfig {
            tuples_per_relation: 30,
            seed: 0x5EED + case as u64,
            ..Default::default()
        };
        let scan_cfg = TestbedConfig { indexes: false, ..cfg.clone() };
        let (mut space, view) = build_testbed(&cfg);
        let (mut scan_space, _) = build_testbed(&scan_cfg);
        let cols = view.output_cols();
        let mut mv = MaterializedView::new("Testbed", cols.clone());
        mv.replace(cols.clone(), eval(&view.query, &space.provider()).expect("testbed view").rows)
            .expect("initial extent is non-negative");

        for step in 0..10 {
            let (sid, du) = random_testbed_du(&cfg, &space, &mut rng);
            let msg = space.commit(sid, SourceUpdate::Data(du.clone())).expect("valid DU");
            let scan_msg =
                scan_space.commit(sid, SourceUpdate::Data(du)).expect("valid DU on scan twin");
            assert_eq!(msg.id, scan_msg.id, "case {case}.{step}: twins stay in lockstep");

            let mut port = InProcessPort::new(space.clone());
            let delta =
                sweep_maintain(&view, &msg, &[], &mut port).0.expect("testbed DU maintains");
            let mut scan_port = InProcessPort::new(scan_space.clone());
            let scan_delta = sweep_maintain(&view, &scan_msg, &[], &mut scan_port)
                .0
                .expect("testbed DU maintains on scan path");
            assert_eq!(delta, scan_delta, "case {case}.{step}: indexed ≡ scan, bit-identical");

            mv.apply_delta(&cols, &delta.rows).expect("maintained extent stays non-negative");
            let recomputed = eval(&view.query, &space.provider()).expect("testbed view");
            assert_eq!(
                *mv.extent(),
                recomputed.rows,
                "case {case}.{step}: maintained extent ≡ full recompute"
            );
        }
    }
}

/// SWEEP compensation as Z-set algebra: commit a batch of concurrent
/// updates first (so every maintenance query already sees all of them),
/// then maintain them in commit order with the not-yet-applied suffix as
/// the pending set. The compensation terms must remove exactly the
/// concurrent effects: after the whole batch the extent equals a full
/// recompute.
#[test]
fn algebraic_compensation_converges_on_concurrent_batches() {
    let mut rng = Rng::new(0xC0_3B5A7E);
    for case in 0..10 {
        let cfg = TestbedConfig {
            tuples_per_relation: 25,
            seed: 0xFACE + case as u64,
            ..Default::default()
        };
        let (mut space, view) = build_testbed(&cfg);
        let cols = view.output_cols();
        let mut mv = MaterializedView::new("Testbed", cols.clone());
        mv.replace(cols.clone(), eval(&view.query, &space.provider()).expect("testbed view").rows)
            .expect("initial extent is non-negative");

        let k = rng.gen_range(2..6usize);
        let mut msgs = Vec::new();
        for _ in 0..k {
            let (sid, du) = random_testbed_du(&cfg, &space, &mut rng);
            msgs.push(space.commit(sid, SourceUpdate::Data(du)).expect("valid DU"));
        }

        for i in 0..k {
            let pending: Vec<UpdateMessage> = msgs[i + 1..].to_vec();
            let mut port = InProcessPort::new(space.clone());
            let delta = sweep_maintain(&view, &msgs[i], &pending, &mut port)
                .0
                .expect("testbed DU maintains");
            mv.apply_delta(&cols, &delta.rows)
                .unwrap_or_else(|e| panic!("case {case} update {i}: extent went negative: {e}"));
        }
        let recomputed = eval(&view.query, &space.provider()).expect("testbed view");
        assert_eq!(
            *mv.extent(),
            recomputed.rows,
            "case {case}: compensated batch ≡ full recompute"
        );
    }
}
