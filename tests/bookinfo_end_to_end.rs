//! Cross-crate integration tests on the paper's running example: every
//! anomaly type (Section 3.1), the cyclic-dependency deadlock (Section 3.5),
//! Definition-1 maintenance shapes, and view-consumer insulation across
//! rewrites.

use dyno::core::Strategy;
use dyno::prelude::*;
use dyno::sim::{check_convergence, check_reflected};
use dyno::view::testkit::{
    bookinfo_space, bookinfo_view, catalog_schema, insert_item, storeitems_change,
};

fn managed(strategy: Strategy) -> (ViewManager, InProcessPort) {
    let space = bookinfo_space();
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(bookinfo_view(), info, strategy);
    mgr.initialize(&mut port).expect("fixture initializes");
    (mgr, port)
}

fn quiesce(mgr: &mut ViewManager, port: &mut InProcessPort) {
    mgr.run_to_quiescence(port, 500).expect("scenario completes");
    assert!(
        check_convergence(port.space(), mgr.view(), mgr.mv()).expect("checkable"),
        "extent must match the view over final source states"
    );
    assert!(
        check_reflected(port.space(), mgr.view(), mgr.reflected(), mgr.mv()).expect("checkable"),
        "extent must match the reflected state vector"
    );
}

/// Anomaly type (1): DU conflicts with M(DU) — the duplication anomaly of
/// Example 1.a, resolved by SWEEP compensation inside the manager.
#[test]
fn type1_concurrent_dus_no_duplication() {
    for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
        let (mut mgr, mut port) = managed(strategy);
        // Two interdependent inserts commit back-to-back; the view manager
        // only learns of them afterwards, so the first's maintenance query
        // already sees the second.
        port.commit(
            SourceId(1),
            SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(
                    catalog_schema(),
                    [Tuple::of([
                        Value::str("Streams"),
                        Value::str("Widom"),
                        Value::str("CS"),
                        Value::str("Stanford"),
                        Value::str("deep"),
                    ])],
                )
                .expect("fixture schema"),
            )),
        )
        .expect("valid");
        port.commit(SourceId(0), SourceUpdate::Data(insert_item(10, "Streams", "Widom", 42)))
            .expect("valid");
        quiesce(&mut mgr, &mut port);
        // Exactly one new view tuple — not two (the duplication anomaly).
        assert_eq!(mgr.mv().len(), 2, "{strategy:?}");
    }
}

/// Anomaly type (3): SC conflicts with M(DU) — Example 1.b. Both strategies
/// converge; only the optimistic one pays an abort.
#[test]
fn type3_broken_du_maintenance() {
    let mut aborts = Vec::new();
    for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
        let (mut mgr, mut port) = managed(strategy);
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .expect("valid");
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item)))
            .expect("valid");
        quiesce(&mut mgr, &mut port);
        assert!(mgr.view().references_relation("StoreItems"), "{strategy:?}");
        assert_eq!(mgr.mv().len(), 2, "{strategy:?}");
        aborts.push(mgr.stats().aborts);
    }
    assert_eq!(aborts[0], 0, "pessimistic avoids the broken query");
    assert!(aborts[1] >= 1, "optimistic suffers it");
}

/// Anomaly type (2): DU conflicts with M(SC) — a data update lands while a
/// schema change's adaptation queries run; rollback compensation keeps the
/// batch-point extent exact and the DU is maintained afterwards.
#[test]
fn type2_du_during_sc_maintenance() {
    let (mut mgr, mut port) = managed(Strategy::Pessimistic);
    // Schema change buffered first.
    port.commit(
        SourceId(1),
        SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "Catalog".into(),
            attr: "Review".into(),
        }),
    )
    .expect("valid");
    // A concurrent DU commits before the adaptation queries are answered
    // (with the in-process port, any commit made now is visible to them).
    port.commit(
        SourceId(0),
        SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
    )
    .expect("valid");
    quiesce(&mut mgr, &mut port);
    // The fixture's information space replaces the dropped Review attribute
    // with ReaderDigest.Comments, so consumers keep their Review column.
    assert!(mgr.view().references_relation("ReaderDigest"));
    assert!(mgr.view().output_cols().contains(&"Review".to_string()));
    assert_eq!(mgr.mv().len(), 2);
}

/// Anomaly type (4): SC conflicts with M(SC) — the Section 3.5 deadlock:
/// neither schema change can be processed before the other; Dyno merges
/// them and the batch rewrite is the paper's Query (5).
#[test]
fn type4_cyclic_schema_changes() {
    for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
        let (mut mgr, mut port) = managed(strategy);
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item)))
            .expect("valid");
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .expect("valid");
        quiesce(&mut mgr, &mut port);
        let v = mgr.view();
        assert!(v.references_relation("StoreItems"), "{strategy:?}");
        assert!(v.references_relation("ReaderDigest"), "{strategy:?}");
        assert_eq!(
            v.output_cols(),
            bookinfo_view().output_cols(),
            "{strategy:?}: consumers keep seeing the original columns (Query (5))"
        );
        assert!(mgr.dyno_stats().merges >= 1, "{strategy:?}: the cycle was merged");
    }
}

/// A long chain of renames on one relation (each hop only mentioning the
/// previous hop's name) must be handled transitively.
#[test]
fn rename_chains_are_transitively_relevant() {
    let (mut mgr, mut port) = managed(Strategy::Pessimistic);
    for i in 0..4 {
        let from = if i == 0 { "Catalog".to_string() } else { format!("Catalog_v{i}") };
        let to = format!("Catalog_v{}", i + 1);
        port.commit(SourceId(1), SourceUpdate::Schema(SchemaChange::RenameRelation { from, to }))
            .expect("valid");
    }
    // One more data update against the final name.
    let schema = catalog_schema().renamed("Catalog_v4");
    port.commit(
        SourceId(1),
        SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(
                schema,
                [Tuple::of([
                    Value::str("Data Integration Guide"),
                    Value::str("Adams"),
                    Value::str("Engineering"),
                    Value::str("Princeton"),
                    Value::str("better"),
                ])],
            )
            .expect("fixture schema"),
        )),
    )
    .expect("valid");
    quiesce(&mut mgr, &mut port);
    assert!(mgr.view().references_relation("Catalog_v4"));
    // 'Data Integration Guide' now has two catalog rows but no matching
    // item; 'Databases' still matches → extent stays at 1.
    assert_eq!(mgr.mv().len(), 1);
}

/// A schema change that touches only unreferenced metadata must not disturb
/// the view (the paper: "a broken query anomaly may not always cause the
/// query to fail").
#[test]
fn irrelevant_changes_cause_no_rewrite() {
    let (mut mgr, mut port) = managed(Strategy::Pessimistic);
    let before = mgr.view().clone();
    port.commit(
        SourceId(2),
        SourceUpdate::Schema(SchemaChange::AddAttribute {
            relation: "ReaderDigest".into(),
            attr: Attribute::new("Stars", AttrType::Int),
            default: Value::from(5),
        }),
    )
    .expect("valid");
    quiesce(&mut mgr, &mut port);
    assert_eq!(mgr.view(), &before);
    assert_eq!(mgr.stats().aborts, 0);
    assert_eq!(mgr.dyno_stats().merges, 0);
}

/// Deletes flow through maintenance with negative deltas.
#[test]
fn deletes_shrink_the_view() {
    let (mut mgr, mut port) = managed(Strategy::Pessimistic);
    let existing =
        Tuple::of([Value::from(1), Value::str("Databases"), Value::str("Ullman"), Value::from(50)]);
    port.commit(
        SourceId(0),
        SourceUpdate::Data(DataUpdate::new(
            Delta::deletes(dyno::view::testkit::item_schema(), [existing]).expect("fixture"),
        )),
    )
    .expect("valid");
    quiesce(&mut mgr, &mut port);
    assert!(mgr.mv().is_empty(), "the only matching item is gone");
}

/// An undefinable schema change (dropping a relation with no replacement)
/// is a hard error, not a silent wrong answer.
#[test]
fn undefinable_views_fail_loudly() {
    let (mut mgr, mut port) = managed(Strategy::Pessimistic);
    port.commit(
        SourceId(1),
        SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
    )
    .expect("valid");
    let err = mgr.run_to_quiescence(&mut port, 100).unwrap_err();
    assert!(matches!(err, ViewError::Undefinable(_)));
}
