//! Differential property tests for the indexed execution engine: secondary
//! hash indexes, the index-aware planner, and the per-view plan cache must
//! be *invisible* — evaluation over an indexed catalog returns exactly what
//! the naive scan evaluator returns (bag multiplicities included), and
//! indexes stay in lockstep with their relations through data updates and
//! DDL trains.
//!
//! Cases are drawn from the in-repo seeded PRNG (`dyno::sim::Rng`), so every
//! run replays the same case set and a failure is reproducible.
#![cfg(feature = "proptest")]

use dyno::prelude::*;
use dyno::relational::{eval, HashIndex};
use dyno::sim::Rng;
use dyno::view::{sweep_maintain, sweep_maintain_observed, InProcessPort, PlanCache};

/// A relation with key `k` plus `extra` integer attributes, populated with
/// random duplicate-bearing rows over a narrow key range so joins match.
fn random_relation(name: &str, extra: usize, rng: &mut Rng) -> Relation {
    let mut cols = vec![("k".to_string(), AttrType::Int)];
    for i in 0..extra {
        cols.push((format!("a{i}"), AttrType::Int));
    }
    let borrowed: Vec<(&str, AttrType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let mut rel = Relation::empty(Schema::of(name, &borrowed));
    for _ in 0..rng.gen_range(0..25usize) {
        let mut vals = vec![Value::from(rng.gen_range(0..6i64))];
        for _ in 0..extra {
            vals.push(Value::from(rng.gen_range(0..4i64)));
        }
        rel.insert(Tuple::new(vals)).expect("generated tuples are well-typed");
    }
    rel
}

/// A plain catalog and an identical-content clone carrying key indexes
/// (plus, sometimes, a non-key index).
fn random_catalogs(rng: &mut Rng) -> (Catalog, Catalog) {
    let mut plain = Catalog::new();
    for (i, name) in ["R", "S", "T"].iter().enumerate() {
        plain.add_relation(random_relation(name, 1 + i % 2, rng)).expect("unique names");
    }
    let mut indexed = plain.clone();
    for name in ["R", "S", "T"] {
        indexed.create_index(name, &["k"]).expect("key attr exists");
    }
    if rng.gen_range(0..2u32) == 1 {
        indexed.create_index("R", &["a0"]).expect("extra attr exists");
    }
    (plain, indexed)
}

/// A chain join over every relation currently in `catalog` on `k`, with a
/// random projection and (usually) a random constant filter — shaped to
/// exercise both the filter-probe and the index-nested-loop paths.
fn random_query(catalog: &Catalog, rng: &mut Rng) -> SpjQuery {
    let names: Vec<String> = catalog.relation_names().map(str::to_string).collect();
    let mut b = SpjQuery::over(names.clone());
    for name in &names {
        for attr in catalog.get(name).expect("listed").schema().attrs() {
            if attr.name == "k" || rng.gen_range(0..2u32) == 0 {
                b = b.select_as(name, &attr.name, &format!("{name}_{}", attr.name));
            }
        }
    }
    for w in names.windows(2) {
        b = b.join_eq((w[0].as_str(), "k"), (w[1].as_str(), "k"));
    }
    if rng.gen_range(0..3u32) > 0 {
        let name = &names[rng.gen_range(0..names.len())];
        b = b.filter(name, "k", CmpOp::Eq, rng.gen_range(0..6i64));
    }
    b.build()
}

/// A random schema change that keeps the catalog joinable on `k`: renames
/// of relations, drops/renames/adds of non-key attributes.
fn random_sc(catalog: &Catalog, rng: &mut Rng, fresh: &mut u32) -> Option<SchemaChange> {
    let names: Vec<String> = catalog.relation_names().map(str::to_string).collect();
    let relation = names[rng.gen_range(0..names.len())].clone();
    let extras: Vec<String> = catalog
        .get(&relation)
        .expect("listed")
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name.clone())
        .filter(|n| n != "k")
        .collect();
    match rng.gen_range(0..4u32) {
        0 => {
            *fresh += 1;
            Some(SchemaChange::RenameRelation { from: relation, to: format!("N{fresh}") })
        }
        1 if !extras.is_empty() => {
            let attr = extras[rng.gen_range(0..extras.len())].clone();
            Some(SchemaChange::DropAttribute { relation, attr })
        }
        2 if !extras.is_empty() => {
            *fresh += 1;
            let from = extras[rng.gen_range(0..extras.len())].clone();
            Some(SchemaChange::RenameAttribute { relation, from, to: format!("x{fresh}") })
        }
        3 => {
            *fresh += 1;
            Some(SchemaChange::AddAttribute {
                relation,
                attr: Attribute::new(format!("x{fresh}"), AttrType::Int),
                default: Value::from(rng.gen_range(0..4i64)),
            })
        }
        _ => None,
    }
}

/// A random insert/delete against one existing relation (deletes target
/// rows that exist, so extents stay non-negative).
fn random_du(catalog: &Catalog, rng: &mut Rng) -> Option<DataUpdate> {
    let names: Vec<String> = catalog.relation_names().map(str::to_string).collect();
    let relation = names[rng.gen_range(0..names.len())].clone();
    let rel = catalog.get(&relation).expect("listed");
    let schema = rel.schema().clone();
    if rng.gen_range(0..3u32) > 0 || rel.rows().is_empty() {
        let mut vals = Vec::new();
        for _ in schema.attrs() {
            vals.push(Value::from(rng.gen_range(0..6i64)));
        }
        Some(DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("well-typed")))
    } else {
        let tuples: Vec<Tuple> = rel.rows().iter().map(|(t, _)| t.clone()).collect();
        let victim = tuples[rng.gen_range(0..tuples.len())].clone();
        Some(DataUpdate::new(Delta::deletes(schema, [victim]).expect("well-typed")))
    }
}

/// Every index the catalog holds must equal a fresh full-scan rebuild over
/// its relation's current extent — "indexed lookups == full scans".
fn assert_indexes_consistent(catalog: &Catalog, ctx: &str) {
    let names: Vec<String> = catalog.relation_names().map(str::to_string).collect();
    for name in &names {
        let rel = catalog.get(name).expect("listed");
        for idx in catalog.indexes_on(name) {
            let rebuilt = HashIndex::build(rel, idx.attrs())
                .unwrap_or_else(|e| panic!("{ctx}: index on {name} covers live attrs: {e}"));
            assert_eq!(
                *idx,
                rebuilt,
                "{ctx}: index on {name}{:?} matches a full scan",
                idx.attrs()
            );
            for (t, c) in rel.rows().iter() {
                let key: Vec<&Value> = idx.cols().iter().map(|&i| t.get(i)).collect();
                let probed: i64 =
                    idx.probe(&key).into_iter().filter(|(pt, _)| *pt == t).map(|(_, pc)| pc).sum();
                assert_eq!(probed, c, "{ctx}: probe on {name} returns the scan multiplicity");
            }
        }
    }
}

/// The tentpole differential: indexed evaluation equals naive evaluation
/// exactly, before and after a random train of schema changes interleaved
/// with data updates applied identically to both catalogs.
#[test]
fn indexed_eval_matches_naive_eval_through_sc_trains() {
    let mut rng = Rng::new(0x1DE_C5);
    for case in 0..40 {
        let (mut plain, mut indexed) = random_catalogs(&mut rng);
        let mut fresh = 0u32;

        let q = random_query(&plain, &mut rng);
        let naive = eval(&q, &plain).expect("query matches generated schema");
        let fast = eval(&q, &indexed).expect("query matches generated schema");
        assert_eq!(naive, fast, "case {case}: pre-SC results identical");

        for step in 0..rng.gen_range(1..5usize) {
            if rng.gen_range(0..2u32) == 0 {
                if let Some(sc) = random_sc(&plain, &mut rng, &mut fresh) {
                    plain.apply_schema_change(&sc).expect("generated SC applies");
                    indexed.apply_schema_change(&sc).expect("generated SC applies");
                }
            } else if let Some(du) = random_du(&plain, &mut rng) {
                plain.apply_data_update(&du).expect("generated DU applies");
                indexed.apply_data_update(&du).expect("generated DU applies");
            }
            assert_eq!(plain, indexed, "case {case}.{step}: same logical content");
            let q = random_query(&plain, &mut rng);
            let naive = eval(&q, &plain).expect("query matches evolved schema");
            let fast = eval(&q, &indexed).expect("query matches evolved schema");
            assert_eq!(naive, fast, "case {case}.{step}: post-update results identical");
        }
    }
}

/// Index maintenance under DDL: after every drop-attribute / rename-relation
/// (and the other attribute-level changes), surviving indexes answer probes
/// exactly as full scans do, and indexes on dropped attributes vanish.
#[test]
fn index_maintenance_survives_ddl_trains() {
    let mut rng = Rng::new(0xDD1_7EA);
    for case in 0..30 {
        let (_, mut catalog) = random_catalogs(&mut rng);
        let mut fresh = 0u32;
        assert_indexes_consistent(&catalog, &format!("case {case} start"));
        for step in 0..rng.gen_range(2..8usize) {
            let ctx = format!("case {case} step {step}");
            if rng.gen_range(0..3u32) == 0 {
                if let Some(du) = random_du(&catalog, &mut rng) {
                    catalog.apply_data_update(&du).expect("generated DU applies");
                }
            } else if let Some(sc) = random_sc(&catalog, &mut rng, &mut fresh) {
                catalog.apply_schema_change(&sc).expect("generated SC applies");
                if let SchemaChange::DropAttribute { relation, attr } = &sc {
                    assert!(
                        catalog.index_covering(relation, &[attr]).is_none(),
                        "{ctx}: index on dropped attribute is gone"
                    );
                }
            }
            assert_indexes_consistent(&catalog, &ctx);
        }
    }
}

/// Plan-cached SWEEP maintenance produces byte-for-byte the same view delta
/// as the uncached path, across repeated data updates against the indexed
/// testbed (cache hits) and across view rewrites (invalidations).
#[test]
fn plan_cached_sweep_matches_uncached_sweep() {
    let mut rng = Rng::new(0x9A5_CACE);
    for case in 0..10 {
        let cfg =
            TestbedConfig { tuples_per_relation: 40, seed: 0x5EED + case, ..Default::default() };
        let (mut space, view) = dyno::sim::build_testbed(&cfg);
        let obs = dyno::obs::Collector::wall();
        let mut cache = PlanCache::new();
        for n in 0..8u64 {
            let rel = rng.gen_range(0..cfg.relation_count());
            let schema = cfg.schema(rel);
            let mut vals = vec![Value::from(rng.gen_range(0..40i64))];
            for _ in 1..schema.arity() {
                vals.push(Value::from(rng.gen_range(0..1_000_000i64)));
            }
            let du = DataUpdate::new(
                Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema"),
            );
            let sid = space.locate(&format!("R{rel}")).expect("testbed relation");
            let msg = space.commit(sid, SourceUpdate::Data(du)).expect("valid DU");
            let mut port = InProcessPort::new(space.clone());
            let uncached =
                sweep_maintain(&view, &msg, &[], &mut port).0.expect("testbed DU maintains");
            let mut port = InProcessPort::new(space.clone());
            let (cached, _) =
                sweep_maintain_observed(&view, &msg, &[], &mut port, &mut cache, &obs);
            let cached = cached.expect("testbed DU maintains");
            assert_eq!(uncached.cols, cached.cols, "case {case} DU {n}: columns identical");
            assert_eq!(uncached.rows, cached.rows, "case {case} DU {n}: deltas identical");
        }
        // After many same-shape DUs the cache must actually be hitting.
        let hits = obs.registry().counter_value("plan.cache_hits").unwrap_or(0);
        assert!(hits > 0, "case {case}: repeated maintenance hits the plan cache");
    }
}
