//! The incremental (Equation 6) adaptation path must be observationally
//! equivalent to wholesale recomputation: for any shape-preserving workload,
//! both `AdaptationMode`s produce the same final view definition and extent;
//! incremental is used exactly when applicable.

use proptest::prelude::*;

use dyno::core::Strategy;
use dyno::prelude::*;
use dyno::sim::{build_testbed, check_convergence, EventKind};
use dyno::view::AdaptationMode;

fn run_with_mode(
    timeline: &[(u64, EventKind)],
    seed: u64,
    mode: AdaptationMode,
) -> (ViewManager, InProcessPort) {
    let cfg = TestbedConfig { tuples_per_relation: 40, ..Default::default() };
    let (space, view) = build_testbed(&cfg);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(cfg, seed);
    let schedule = gen.realize(timeline);
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(view, info, Strategy::Pessimistic).with_adaptation(mode);
    mgr.initialize(&mut port).expect("testbed initializes");
    for c in schedule {
        port.commit(c.source, c.update).expect("workload is schema-consistent");
    }
    mgr.run_to_quiescence(&mut port, 2_000).expect("quiesces");
    (mgr, port)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Auto (incremental where applicable) and RecomputeOnly agree on the
    /// final definition and extent for arbitrary DU/rename/drop workloads.
    #[test]
    fn modes_agree(
        events in prop::collection::vec(
            prop::sample::select(vec![
                EventKind::DataUpdate,
                EventKind::DataUpdate,
                EventKind::RenameRelation,
                EventKind::DropAttribute,
            ]),
            1..12
        ),
        seed in 0u64..500,
    ) {
        let timeline: Vec<(u64, EventKind)> =
            events.into_iter().enumerate().map(|(i, k)| (i as u64, k)).collect();
        let (auto, auto_port) = run_with_mode(&timeline, seed, AdaptationMode::Auto);
        let (reco, _) = run_with_mode(&timeline, seed, AdaptationMode::RecomputeOnly);
        prop_assert_eq!(auto.view(), reco.view());
        prop_assert_eq!(auto.mv().extent(), reco.mv().extent());
        prop_assert!(check_convergence(auto_port.space(), auto.view(), auto.mv()).unwrap());
        prop_assert_eq!(reco.stats().incremental_batches, 0,
            "RecomputeOnly never takes the incremental path");
    }
}

/// A rename-plus-insert batch is adapted incrementally under Auto.
#[test]
fn auto_uses_incremental_for_renames() {
    let timeline = vec![
        (0, EventKind::DataUpdate),
        (0, EventKind::RenameRelation),
        (0, EventKind::RenameRelation),
    ];
    let (mgr, port) = run_with_mode(&timeline, 7, AdaptationMode::Auto);
    assert!(mgr.stats().incremental_batches >= 1, "stats: {:?}", mgr.stats());
    assert!(check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap());
}
