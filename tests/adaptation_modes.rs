//! The incremental (Equation 6) adaptation path must be observationally
//! equivalent to wholesale recomputation: for any shape-preserving workload,
//! both `AdaptationMode`s produce the same final view definition and extent;
//! incremental is used exactly when applicable.
//!
//! The randomized sweep is gated behind the `proptest` feature; the plain
//! smoke test below always runs.

use dyno::core::Strategy;
use dyno::prelude::*;
use dyno::sim::{build_testbed, check_convergence, EventKind};
use dyno::view::AdaptationMode;

fn run_with_mode(
    timeline: &[(u64, EventKind)],
    seed: u64,
    mode: AdaptationMode,
) -> (ViewManager, InProcessPort) {
    let cfg = TestbedConfig { tuples_per_relation: 40, ..Default::default() };
    let (space, view) = build_testbed(&cfg);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(cfg, seed);
    let schedule = gen.realize(timeline);
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(view, info, Strategy::Pessimistic).with_adaptation(mode);
    mgr.initialize(&mut port).expect("testbed initializes");
    for c in schedule {
        port.commit(c.source, c.update).expect("workload is schema-consistent");
    }
    mgr.run_to_quiescence(&mut port, 2_000).expect("quiesces");
    (mgr, port)
}

/// Auto (incremental where applicable) and RecomputeOnly agree on the final
/// definition and extent for arbitrary DU/rename/drop workloads.
#[cfg(feature = "proptest")]
#[test]
fn modes_agree() {
    use dyno::sim::Rng;
    const KINDS: [EventKind; 4] = [
        EventKind::DataUpdate,
        EventKind::DataUpdate,
        EventKind::RenameRelation,
        EventKind::DropAttribute,
    ];
    let mut rng = Rng::new(0xADA_4517);
    for case in 0..16 {
        let n_events = rng.gen_range(1..12usize);
        let timeline: Vec<(u64, EventKind)> =
            (0..n_events).map(|i| (i as u64, *rng.choose(&KINDS))).collect();
        let seed = rng.gen_range(0..500u64);
        let (auto, auto_port) = run_with_mode(&timeline, seed, AdaptationMode::Auto);
        let (reco, _) = run_with_mode(&timeline, seed, AdaptationMode::RecomputeOnly);
        assert_eq!(auto.view(), reco.view(), "case {case}");
        assert_eq!(auto.mv().extent(), reco.mv().extent(), "case {case}");
        assert!(check_convergence(auto_port.space(), auto.view(), auto.mv()).unwrap());
        assert_eq!(
            reco.stats().incremental_batches,
            0,
            "case {case}: RecomputeOnly never takes the incremental path"
        );
    }
}

/// A rename-plus-insert batch is adapted incrementally under Auto.
#[test]
fn auto_uses_incremental_for_renames() {
    let timeline = vec![
        (0, EventKind::DataUpdate),
        (0, EventKind::RenameRelation),
        (0, EventKind::RenameRelation),
    ];
    let (mgr, port) = run_with_mode(&timeline, 7, AdaptationMode::Auto);
    assert!(mgr.stats().incremental_batches >= 1, "stats: {:?}", mgr.stats());
    assert!(check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap());
}
