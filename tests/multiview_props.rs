//! The differential multi-view suite: a warehouse holding N overlapping
//! views driven through the seeded fault-injection transport
//! (`dyno::sim::run_multiview`), with the per-view differential oracle on at
//! every commit — each incrementally maintained extent must equal *that
//! view's* definition recomputed from scratch at the state vector the view
//! claims to reflect, so a deferred view audits at its own older vector
//! while its peers audit ahead of it.
//!
//! Invariants every healthy run must satisfy:
//!
//! * **termination** — quiescence within the step budget;
//! * **per-view convergence** — every final extent equals its (current)
//!   definition over the final source states, with nothing still deferred;
//! * **per-view strong consistency** — the differential audit passes after
//!   every commit and after every crash recovery;
//! * **bit identity** — shared-subplan execution, unshared execution, and
//!   kill/recover runs of the same seed all produce CRC-identical extents.
//!
//! The quick subset always runs; the full grid (seeds × profiles ×
//! strategies, with and without kills) is `#[ignore]`d and exercised by
//! `scripts/verify.sh` under `VERIFY_FULL=1` via `--include-ignored`. When
//! `DYNO_MULTIVIEW_SUMMARY` names a file, each run appends its view count,
//! shared-subplan hits, and divergent-verdict count so the harness can
//! assert the suite exercised ≥3 overlapping views, actually shared work,
//! and saw per-view safety verdicts split at least once.

use dyno::core::{CorrectionPolicy, Strategy};
use dyno::fault::FaultProfile;
use dyno::prelude::*;
use dyno::sim::{run_multiview, MultiViewConfig, MultiViewReport};
use dyno::view::testkit::{bookinfo_space, bookinfo_view, insert_item};
use dyno::view::{CrashPlan, CrashPoint, InProcessPort, Warehouse};

/// Runs one configuration, enforces the invariants, appends the summary.
fn assert_healthy(cfg: &MultiViewConfig) -> MultiViewReport {
    let report = run_multiview(cfg);
    let ctx = format!(
        "profile={} seed={} views={} strategy={:?} share={} kills={}",
        cfg.profile.name,
        cfg.seed,
        cfg.views,
        cfg.strategy,
        cfg.share_subplans,
        cfg.kills.len()
    );
    assert!(!report.exhausted, "{ctx}: must quiesce within the step budget");
    assert!(report.last_error.is_none(), "{ctx}: hard error {:?}", report.last_error);
    assert!(report.converged, "{ctx}: per-view convergence {:?}", report.per_view_converged);
    assert_eq!(report.audit_violations, 0, "{ctx}: differential audit at every commit");
    assert_eq!(report.recovery_audit_failures, 0, "{ctx}: differential audit after recovery");
    write_summary(cfg, &report);
    report
}

/// Appends `views=` / `subplan.shared_hits=` / `safety.divergent_verdicts=`
/// lines to `$DYNO_MULTIVIEW_SUMMARY` when set (the verify.sh hook).
fn write_summary(cfg: &MultiViewConfig, report: &MultiViewReport) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("DYNO_MULTIVIEW_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "views={}", cfg.views);
            let _ = writeln!(f, "subplan.shared_hits={}", report.subplan_hits);
            let _ = writeln!(f, "safety.divergent_verdicts={}", report.divergent_verdicts);
        }
    }
}

#[test]
fn multiview_quick_each_profile_converges() {
    // One seed per fault profile (plus the fault-free baseline), three
    // overlapping views: the always-on smoke version of the full grid.
    let quiet = assert_healthy(&MultiViewConfig::new(FaultProfile::quiet(), 11));
    assert_eq!(quiet.fault_injected, 0, "the quiet profile injects nothing");
    assert!(quiet.subplan_hits > 0, "overlapping views must share first hops");
    let mut injected = 0;
    for profile in FaultProfile::all() {
        injected += assert_healthy(&MultiViewConfig::new(profile, 11)).fault_injected;
    }
    assert!(injected > 0, "the quick sweep must inject at least one fault");
}

#[test]
fn multiview_quick_shared_matches_unshared_bit_for_bit() {
    let shared = assert_healthy(&MultiViewConfig::new(FaultProfile::drop_dup(), 5));
    let unshared =
        assert_healthy(&MultiViewConfig::new(FaultProfile::drop_dup(), 5).without_sharing());
    assert!(shared.subplan_hits > 0);
    assert_eq!(unshared.subplan_hits, 0, "sharing off never consults the cache");
    assert_eq!(
        shared.final_extent_crcs, unshared.final_extent_crcs,
        "sharing changes how much work runs, never what is computed"
    );
}

#[test]
fn multiview_quick_kill_recovers_bit_identically() {
    let baseline = assert_healthy(&MultiViewConfig::new(FaultProfile::quiet(), 31));
    let crashed = assert_healthy(
        &MultiViewConfig::new(FaultProfile::quiet(), 31)
            .with_kills(vec![CrashPlan { point: CrashPoint::BetweenSteps, skip: 3 }]),
    );
    assert_eq!(crashed.kills, 1, "the armed kill fired");
    assert_eq!(
        crashed.final_extent_crcs, baseline.final_extent_crcs,
        "WAL recovery restores every view bit-identically"
    );
}

/// The PriceList view (Retailer only — no `Catalog` dependency).
fn pricelist_view() -> ViewDefinition {
    let q = SpjQuery::over(["Store", "Item"])
        .select("Store", "StoreName")
        .select("Item", "Book")
        .select("Item", "Price")
        .join_eq(("Store", "SID"), ("Item", "SID"))
        .build();
    ViewDefinition::new("PriceList", q)
}

/// A Library-only view that does *not* project the `Review` attribute.
fn titles_view() -> ViewDefinition {
    let q = SpjQuery::over(["Catalog"])
        .select("Catalog", "Title")
        .select("Catalog", "Publisher")
        .build();
    ViewDefinition::new("Titles", q)
}

/// Satellite: the cross-view SC safety matrix. One schema change —
/// `DROP Catalog.Review` (paper SC2) — lands concurrently with an
/// in-flight data update. The SC is **unsafe** for `BookInfo` (it projects
/// `Review`, so the drop invalidates its definition: the paper's
/// broken-query anomaly classes) and **safe** for `PriceList` (Retailer
/// only) and `Titles` (reads `Catalog` but never `Review`). The warehouse
/// must record the split verdict, let the safe views commit untouched, and
/// correct the unsafe view through view synchronization (rewriting
/// `Review` → `ReaderDigest.Comments` per the information space) — and the
/// whole episode must be bit-identical with and without subplan sharing.
#[test]
fn sc_safety_matrix_splits_verdicts_and_corrects_only_the_unsafe_view() {
    let run = |strategy: Strategy, share: bool| {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut wh = Warehouse::new(info, strategy)
            .with_correction(CorrectionPolicy::MergeCycles)
            .with_subplan_sharing(share);
        wh.add_view(bookinfo_view()); // unsafe: projects Catalog.Review
        wh.add_view(pricelist_view()); // safe: never touches the Library
        wh.add_view(titles_view()); // safe: Catalog without Review
        wh.initialize(&mut port).unwrap();

        // A DU and the SC committed back to back: the drop arrives while
        // the insert's maintenance is still pending — the concurrency that
        // produces the paper's anomalies in the single-view setting.
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 200).unwrap();

        assert!(
            wh.divergent_verdicts() >= 1,
            "{strategy:?}: safe-for-A/unsafe-for-B must be recorded as a split verdict"
        );

        // A (PriceList) committed the DU and kept its definition verbatim.
        assert_eq!(wh.mv(1).len(), 2, "{strategy:?}: the safe view committed the insert");
        assert_eq!(
            wh.view(1).query,
            pricelist_view().query,
            "{strategy:?}: the SC must not rewrite a view it cannot invalidate"
        );
        assert_eq!(wh.view(2).query, titles_view().query);

        // B (BookInfo) was corrected: the information-space replacement
        // redirected `Catalog.Review` to `ReaderDigest.Comments`, keeping
        // the output name `Review` as an alias (consumer insulation).
        let rewritten = wh.view(0).query.to_string();
        assert!(
            rewritten.contains("ReaderDigest.Comments AS Review"),
            "{strategy:?}: VS must redirect Review to the Digest source, got {rewritten}"
        );
        assert!(
            wh.view(0).query.tables.iter().any(|t| t == "ReaderDigest"),
            "{strategy:?}: the corrected join reaches the replacement relation"
        );

        // Every view — corrected or untouched — converges to its current
        // definition over the final source states.
        for i in 0..wh.view_count() {
            let expected = dyno::relational::eval(&wh.view(i).query, &port.space().provider())
                .expect("post-SC definitions are valid");
            assert_eq!(wh.mv(i).extent(), &expected.rows, "{strategy:?}: view {i} converged");
        }
        let extents: Vec<_> = (0..wh.view_count()).map(|i| wh.mv(i).sorted_tuples()).collect();
        (extents, wh.subplan_hits())
    };

    for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
        let (shared, hits) = run(strategy, true);
        let (unshared, no_hits) = run(strategy, false);
        assert_eq!(
            shared, unshared,
            "{strategy:?}: shared-subplan execution is bit-identical to unshared"
        );
        assert!(hits >= 1, "{strategy:?}: the DU's first hop was shared across views");
        assert_eq!(no_hits, 0);
    }

    // The sim-level runner sees the same divergence under a seeded
    // workload; report it to the summary file for the verify.sh gate.
    let cfg = MultiViewConfig::new(FaultProfile::quiet(), 2);
    let report = assert_healthy(&cfg);
    assert!(report.divergent_verdicts >= 1, "seeded SC train splits verdicts across views");
}

/// The full differential grid: seeds × profiles × strategies, each run
/// audited per view at every commit. `#[ignore]`d (minutes in release
/// mode); run via `scripts/verify.sh` under `VERIFY_FULL=1` or
/// `cargo test --release --test multiview_props -- --include-ignored`.
#[test]
#[ignore = "full grid; run with --include-ignored (scripts/verify.sh)"]
fn multiview_full_grid_converges_under_chaos() {
    let mut injected = 0u64;
    let mut hits = 0u64;
    let mut divergent = 0u64;
    for profile in FaultProfile::all() {
        for seed in 0..4u64 {
            for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
                let cfg = MultiViewConfig::new(profile, seed).with_strategy(strategy);
                let report = assert_healthy(&cfg);
                injected += report.fault_injected;
                hits += report.subplan_hits;
                divergent += report.divergent_verdicts;
            }
        }
    }
    assert!(injected > 0, "the grid must inject faults");
    assert!(hits > 0, "the grid must share subplans");
    assert!(divergent > 0, "the grid's SC trains must split verdicts at least once");
}

#[test]
#[ignore = "full grid companion; run with --include-ignored (scripts/verify.sh)"]
fn multiview_full_grid_sharing_is_transparent() {
    // Across profiles and seeds, shared and unshared execution never
    // disagree on a single extent bit.
    for profile in FaultProfile::all() {
        for seed in 0..3u64 {
            let shared = assert_healthy(&MultiViewConfig::new(profile, seed));
            let unshared = assert_healthy(&MultiViewConfig::new(profile, seed).without_sharing());
            assert_eq!(
                shared.final_extent_crcs, unshared.final_extent_crcs,
                "profile={} seed={seed}",
                profile.name
            );
        }
    }
}

#[test]
#[ignore = "full grid companion; run with --include-ignored (scripts/verify.sh)"]
fn multiview_full_grid_recovers_from_kills() {
    // Kill/recover at several points mid-run, under a faulty transport,
    // and demand bit-identity with the uncrashed run of the same seed.
    for profile in [FaultProfile::quiet(), FaultProfile::drop_dup()] {
        for seed in 0..3u64 {
            let baseline = assert_healthy(&MultiViewConfig::new(profile, seed));
            for skip in [1u64, 4, 7] {
                let crashed = assert_healthy(
                    &MultiViewConfig::new(profile, seed)
                        .with_kills(vec![CrashPlan { point: CrashPoint::BetweenSteps, skip }]),
                );
                assert!(crashed.kills >= 1, "profile={} seed={seed} skip={skip}", profile.name);
                assert_eq!(
                    crashed.final_extent_crcs, baseline.final_extent_crcs,
                    "profile={} seed={seed} skip={skip}: recovery is bit-identical per view",
                    profile.name
                );
            }
        }
    }
}
