//! Round-trip property for the SQL dialect: any query built through the
//! typed API renders to SQL that parses back to the identical AST.

use proptest::prelude::*;

use dyno::prelude::*;
use dyno::relational::{parse_query, Predicate, ProjItem};

prop_compose! {
    fn ident()(s in "[A-Za-z][A-Za-z0-9_]{0,8}") -> String {
        // Avoid reserved words of the dialect.
        let reserved = ["select", "from", "where", "and", "as", "create", "view",
                        "true", "false", "null"];
        if reserved.iter().any(|r| s.eq_ignore_ascii_case(r)) {
            format!("{s}_x")
        } else {
            s
        }
    }
}

prop_compose! {
    fn literal()(choice in 0u8..4, i in -1000i64..1000, s in "[a-zA-Z0-9 ']{0,10}") -> Value {
        match choice {
            0 => Value::from(i),
            1 => Value::str(s),
            2 => Value::Bool(i % 2 == 0),
            _ => Value::float(i as f64 / 8.0),
        }
    }
}

prop_compose! {
    fn query()(
        tables in prop::collection::hash_set(ident(), 1..4),
        proj_specs in prop::collection::vec((ident(), prop::option::of(ident())), 1..5),
        filter_specs in prop::collection::vec(
            (ident(), prop::sample::select(vec![
                CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge
            ]), literal()),
            0..4
        ),
        join in prop::bool::ANY,
    ) -> SpjQuery {
        let tables: Vec<String> = tables.into_iter().collect();
        let pick = |i: usize| tables[i % tables.len()].clone();
        let projection = proj_specs
            .into_iter()
            .enumerate()
            .map(|(i, (attr, alias))| {
                let col = ColRef::new(pick(i), attr);
                match alias {
                    Some(a) => ProjItem::aliased(col, a),
                    None => ProjItem::plain(col),
                }
            })
            .collect();
        let mut predicates: Vec<Predicate> = filter_specs
            .into_iter()
            .enumerate()
            .map(|(i, (attr, op, lit))| {
                Predicate::Compare(ColRef::new(pick(i), attr), op, lit)
            })
            .collect();
        if join && tables.len() >= 2 {
            predicates.push(Predicate::JoinEq(
                ColRef::new(tables[0].clone(), "k"),
                ColRef::new(tables[1].clone(), "k"),
            ));
        }
        SpjQuery { tables, projection, predicates }
    }
}

proptest! {
    #[test]
    fn display_then_parse_is_identity(q in query()) {
        // NULL literals render as `NULL` and parse back; float literals must
        // render with a decimal point to parse as floats — integral floats
        // like 2.0 render as "2", so skip those rare cases explicitly.
        let skippable = q.predicates.iter().any(|p| match p {
            Predicate::Compare(_, _, Value::Float(f)) => f.get().fract() == 0.0,
            Predicate::Compare(_, _, Value::Null) => true, // NULL = NULL is unusual but fine
            _ => false,
        });
        prop_assume!(!skippable);
        let sql = q.to_string();
        let parsed = parse_query(&sql)
            .map_err(|e| TestCaseError::fail(format!("{sql}: {e}")))?;
        prop_assert_eq!(parsed, q);
    }
}
