//! Round-trip randomized test for the SQL dialect: any query built through
//! the typed API renders to SQL that parses back to the identical AST.
#![cfg(feature = "proptest")]

use dyno::prelude::*;
use dyno::relational::{parse_query, Predicate, ProjItem};
use dyno::sim::Rng;

const IDENT_HEAD: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const IDENT_TAIL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
const STR_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '";

/// `[A-Za-z][A-Za-z0-9_]{0,8}`, dodging the dialect's reserved words.
fn ident(rng: &mut Rng) -> String {
    let mut s = String::new();
    s.push(*rng.choose(IDENT_HEAD) as char);
    for _ in 0..rng.gen_range(0..9usize) {
        s.push(*rng.choose(IDENT_TAIL) as char);
    }
    let reserved =
        ["select", "from", "where", "and", "as", "create", "view", "true", "false", "null"];
    if reserved.iter().any(|r| s.eq_ignore_ascii_case(r)) {
        format!("{s}_x")
    } else {
        s
    }
}

fn literal(rng: &mut Rng) -> Value {
    let choice = rng.gen_range(0..4u32);
    let i = rng.gen_range(-1000..1000i64);
    match choice {
        0 => Value::from(i),
        1 => {
            let n = rng.gen_range(0..11usize);
            let s: String = (0..n).map(|_| *rng.choose(STR_CHARS) as char).collect();
            Value::str(s)
        }
        2 => Value::Bool(i % 2 == 0),
        _ => Value::float(i as f64 / 8.0),
    }
}

fn query(rng: &mut Rng) -> SpjQuery {
    let mut tables: Vec<String> = Vec::new();
    for _ in 0..rng.gen_range(1..4usize) {
        let t = ident(rng);
        if !tables.contains(&t) {
            tables.push(t);
        }
    }
    let pick = |i: usize, tables: &[String]| tables[i % tables.len()].clone();
    let projection = (0..rng.gen_range(1..5usize))
        .map(|i| {
            let col = ColRef::new(pick(i, &tables), ident(rng));
            if rng.gen_range(0..2u32) == 0 {
                ProjItem::aliased(col, ident(rng))
            } else {
                ProjItem::plain(col)
            }
        })
        .collect();
    const OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    let mut predicates: Vec<Predicate> = (0..rng.gen_range(0..4usize))
        .map(|i| {
            Predicate::Compare(ColRef::new(pick(i, &tables), ident(rng)), *rng.choose(&OPS), {
                literal(rng)
            })
        })
        .collect();
    if rng.gen_range(0..2u32) == 0 && tables.len() >= 2 {
        predicates.push(Predicate::JoinEq(
            ColRef::new(tables[0].clone(), "k"),
            ColRef::new(tables[1].clone(), "k"),
        ));
    }
    SpjQuery { tables, projection, predicates }
}

#[test]
fn display_then_parse_is_identity() {
    let mut rng = Rng::new(0x5A1_4517);
    let mut checked = 0;
    for _ in 0..256 {
        let q = query(&mut rng);
        // Float literals must render with a decimal point to parse back as
        // floats — integral floats like 2.0 render as "2" — and `NULL`
        // comparisons are unusual; skip those rare cases explicitly.
        let skippable = q.predicates.iter().any(|p| match p {
            Predicate::Compare(_, _, Value::Float(f)) => f.get().fract() == 0.0,
            Predicate::Compare(_, _, Value::Null) => true,
            _ => false,
        });
        if skippable {
            continue;
        }
        let sql = q.to_string();
        let parsed = parse_query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(parsed, q, "round-trip of {sql}");
        checked += 1;
    }
    assert!(checked > 200, "skip rate too high: only {checked}/256 cases checked");
}
