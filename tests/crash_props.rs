//! The seeded crash-recovery suite: the chaos testbed with the warehouse
//! process itself killed at deterministic points of the commit protocol and
//! recovered from its write-ahead log (`dyno::durable` + `dyno::view::wal`).
//!
//! Every run must satisfy:
//!
//! * **termination** — the run quiesces within its step budget despite the
//!   kills;
//! * **strong consistency** — `check_reflected` passes after every commit
//!   *and immediately after every recovery*;
//! * **convergence** — the final extent equals the view over final source
//!   states;
//! * **bit identity** — the final extent (CRC over its canonical encoding)
//!   and final view SQL equal those of the same seed run with no kills:
//!   recovery changes *when* work happens, never *what* is computed;
//! * **no torn tails** — the simulated power cut drops whole records, so
//!   `recover.torn_records` must stay 0 (torn-write handling itself is
//!   fuzzed per byte in `dyno-durable` and below).
//!
//! The quick subset always runs; the acceptance grid (3 crash classes × 8
//! seeds × 2 correction policies) is `#[ignore]`d and exercised by
//! `scripts/verify.sh` under `VERIFY_FULL=1` via `--include-ignored`. When
//! `DYNO_CRASH_SUMMARY` names a file, each run appends its kill and torn
//! counters so the harness can assert the suite actually crashed processes.

use dyno::core::CorrectionPolicy;
use dyno::durable::{MemStorage, Storage};
use dyno::fault::FaultProfile;
use dyno::obs::Collector;
use dyno::sim::{run_crash_chaos, CrashConfig, CrashReport};
use dyno::view::wal::{CrashPlan, CrashPoint};

const CLASSES: [CrashPoint; 3] =
    [CrashPoint::BetweenSteps, CrashPoint::AfterIntent, CrashPoint::MidBatch];

/// Runs one kill configuration and enforces every invariant above,
/// comparing against the same seed's no-kill baseline.
fn assert_healthy(cfg: &CrashConfig, baseline: &CrashReport) -> CrashReport {
    let report = run_crash_chaos(cfg);
    let ctx = format!(
        "profile={} seed={} policy={:?} kills={:?}",
        cfg.profile.name, cfg.seed, cfg.policy, cfg.kills
    );
    assert!(!report.exhausted, "{ctx}: must terminate within the step budget");
    assert!(report.last_error.is_none(), "{ctx}: hard error {:?}", report.last_error);
    assert!(report.converged, "{ctx}: extent must converge to final source states");
    assert_eq!(report.audit_violations, 0, "{ctx}: strong consistency at every commit");
    assert_eq!(report.recovery_audit_failures, 0, "{ctx}: strong consistency after recovery");
    assert_eq!(report.torn_records, 0, "{ctx}: whole-record cuts leave no torn tail");
    assert_eq!(report.final_view_sql, baseline.final_view_sql, "{ctx}: same final view");
    assert_eq!(
        report.final_extent_crc, baseline.final_extent_crc,
        "{ctx}: final extent bit-identical to the no-kill run"
    );
    write_summary(&report);
    report
}

/// Appends kill/torn counters to `$DYNO_CRASH_SUMMARY` when set.
fn write_summary(report: &CrashReport) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("DYNO_CRASH_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "wal.kills={} recover.torn_records={}",
                report.kills, report.torn_records
            );
        }
    }
}

#[test]
fn crash_quick_each_class_recovers() {
    let baseline = run_crash_chaos(&CrashConfig::new(FaultProfile::quiet(), 7));
    assert!(baseline.converged && baseline.kills == 0);
    let mut kills = 0;
    for point in CLASSES {
        let cfg = CrashConfig::new(FaultProfile::quiet(), 7)
            .with_kills(vec![CrashPlan { point, skip: 1 }]);
        kills += assert_healthy(&cfg, &baseline).kills;
    }
    assert_eq!(kills, 3, "every crash class must actually fire");
}

#[test]
fn crash_quick_survives_repeated_kills_in_one_run() {
    let baseline = run_crash_chaos(&CrashConfig::new(FaultProfile::quiet(), 11));
    let cfg = CrashConfig::new(FaultProfile::quiet(), 11).with_kills(vec![
        CrashPlan { point: CrashPoint::BetweenSteps, skip: 0 },
        CrashPlan { point: CrashPoint::AfterIntent, skip: 0 },
        CrashPlan { point: CrashPoint::MidBatch, skip: 0 },
    ]);
    let report = assert_healthy(&cfg, &baseline);
    assert_eq!(report.kills, 3, "all three kills fire in a single run");
    assert!(report.replayed_records > 0, "recovery replays logged records");
}

#[test]
fn crash_quick_survives_kills_under_transport_faults() {
    // Kills on top of drop/duplicate transport faults: both recovery layers
    // (delivery resequencing and WAL replay) active at once. Bit identity
    // is only asserted against the no-kill run of the SAME faulty profile.
    let baseline = run_crash_chaos(&CrashConfig::new(FaultProfile::drop_dup(), 3));
    assert!(baseline.converged, "faulty-transport baseline converges");
    let cfg = CrashConfig::new(FaultProfile::drop_dup(), 3)
        .with_kills(vec![CrashPlan { point: CrashPoint::BetweenSteps, skip: 1 }]);
    let report = assert_healthy(&cfg, &baseline);
    assert_eq!(report.kills, 1);
}

/// The view-level torn-write matrix: a real manager log truncated at every
/// byte boundary of its tail. Recovery must never panic, never lose the
/// checkpointed prefix, and must report the torn tail via the counter.
#[test]
fn view_recovery_survives_truncation_at_every_byte() {
    // Build a small real log: checkpoint + a few maintained updates.
    use dyno::prelude::*;
    use dyno::view::testkit::{bookinfo_space, bookinfo_view, insert_item};
    use dyno::view::DurableLog;

    let space = bookinfo_space();
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(bookinfo_view(), info.clone(), Strategy::Pessimistic);
    mgr.initialize(&mut port).unwrap();
    let disk = MemStorage::new();
    let mut mgr = mgr.with_wal(DurableLog::create(Box::new(disk.clone())).unwrap());
    for i in 0..4 {
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(20 + i, "Torn Pages", "Author", 10)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 10).unwrap();
    }
    let image = disk.snapshot();
    let full = Storage::len(&disk).unwrap() as usize;
    let checkpointed_extent = {
        let obs = Collector::disabled();
        let (m, _) = ViewManager::recover(Box::new(disk.clone()), info.clone(), obs).unwrap();
        m.mv().len()
    };
    assert!(checkpointed_extent >= 1);

    let mut torn_seen = 0u64;
    for cut in 0..=full {
        let storage = MemStorage::new();
        storage.set(image[..cut].to_vec());
        let obs = Collector::wall();
        match ViewManager::recover(Box::new(storage), info.clone(), obs.clone()) {
            Ok((m, report)) => {
                // The checkpointed prefix survives: the recovered view is a
                // valid bookinfo state, never an empty or corrupt shell.
                assert!(!m.mv().is_empty(), "cut={cut}: checkpointed prefix lost");
                torn_seen += report.torn_records;
                assert_eq!(
                    report.torn_records,
                    obs.registry().counter_value("recover.torn_records").unwrap_or(0),
                    "cut={cut}: torn tail must be counted"
                );
            }
            // Cutting inside the very first checkpoint record leaves no
            // recoverable state at all — an explicit error, not a panic.
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("checkpoint"), "cut={cut}: unexpected error {msg}");
            }
        }
    }
    assert!(torn_seen > 0, "some truncation points must yield a reported torn tail");
}

/// The acceptance grid: 3 crash classes × 8 seeds × 2 correction policies,
/// every run audited at every commit and recovery, each compared
/// bit-for-bit against its no-kill baseline. Run via `VERIFY_FULL=1
/// scripts/verify.sh` or `cargo test --release --test crash_props --
/// --include-ignored`.
#[test]
#[ignore = "full grid; run with --include-ignored (VERIFY_FULL=1 scripts/verify.sh)"]
fn crash_full_grid_recovers_on_every_class() {
    let mut kills = 0u64;
    for policy in [CorrectionPolicy::MergeCycles, CorrectionPolicy::MergeAll] {
        for seed in 0..8u64 {
            let baseline =
                run_crash_chaos(&CrashConfig::new(FaultProfile::quiet(), seed).with_policy(policy));
            assert!(baseline.converged, "seed={seed} policy={policy:?}: baseline converges");
            for point in CLASSES {
                let cfg = CrashConfig::new(FaultProfile::quiet(), seed)
                    .with_policy(policy)
                    .with_kills(vec![CrashPlan { point, skip: seed % 3 }]);
                kills += assert_healthy(&cfg, &baseline).kills;
            }
        }
    }
    assert!(kills >= 40, "the grid must actually kill processes (got {kills})");
}

#[test]
#[ignore = "full grid companion; run with --include-ignored (VERIFY_FULL=1 scripts/verify.sh)"]
fn crash_full_grid_is_deterministic() {
    for point in CLASSES {
        let cfg = CrashConfig::new(FaultProfile::drop_dup(), 5)
            .with_kills(vec![CrashPlan { point, skip: 0 }]);
        let a = run_crash_chaos(&cfg);
        let b = run_crash_chaos(&cfg);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.final_extent_crc, b.final_extent_crc, "bit-identical replays");
        assert_eq!(a.replayed_records, b.replayed_records);
    }
}
