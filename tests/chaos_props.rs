//! The seeded chaos suite: the testbed of paper Section 6.1 driven through a
//! deterministic fault-injecting transport (`dyno::fault::ChaosTransport`),
//! asserting that the view manager's recovery machinery preserves the
//! paper's correctness criteria (Section 4.4) under message drop,
//! duplication, reordering, bounded delay, query timeouts, transient errors,
//! and source crash/restart:
//!
//! * **termination** — every run quiesces within its step budget;
//! * **convergence** — the final extent equals the view over final source
//!   states;
//! * **strong consistency** — every intermediate reflected vector passes
//!   `check_reflected` (audited at every commit);
//! * **faults actually fired** — a suite that injects nothing proves
//!   nothing.
//!
//! The quick subset below always runs; the full grid (seeds × profiles ×
//! strategies × correction policies) is `#[ignore]`d and exercised by
//! `scripts/verify.sh` via `--include-ignored`. When `DYNO_CHAOS_SUMMARY`
//! names a file, each run appends its injected-fault count so the harness
//! can assert the suite was not a silent no-op.

use dyno::core::{CorrectionPolicy, Strategy};
use dyno::fault::FaultProfile;
use dyno::sim::{run_chaos, ChaosConfig, ChaosReport};

/// Runs one configuration and enforces the invariants every healthy chaos
/// run must satisfy, then reports the injected-fault count for the summary.
fn assert_healthy(cfg: &ChaosConfig) -> ChaosReport {
    let report = run_chaos(cfg);
    let ctx = format!(
        "profile={} seed={} strategy={:?} policy={:?}",
        cfg.profile.name, cfg.seed, cfg.strategy, cfg.policy
    );
    assert!(!report.exhausted, "{ctx}: must terminate within the step budget");
    assert!(report.last_error.is_none(), "{ctx}: hard error {:?}", report.last_error);
    assert!(report.converged, "{ctx}: extent must converge to final source states");
    assert_eq!(report.audit_violations, 0, "{ctx}: strong consistency at every commit");
    write_summary(&report);
    report
}

/// Appends `fault.injected_total=<n>` to `$DYNO_CHAOS_SUMMARY` when set.
fn write_summary(report: &ChaosReport) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("DYNO_CHAOS_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "fault.injected_total={}", report.fault_injected);
        }
    }
}

#[test]
fn chaos_quick_each_profile_converges() {
    // One seed per profile, pessimistic, default policy: the always-on
    // smoke version of the full grid.
    let mut injected = 0;
    for profile in FaultProfile::all() {
        injected += assert_healthy(&ChaosConfig::new(profile, 7)).fault_injected;
    }
    assert!(injected > 0, "the quick sweep must inject at least one fault");
}

#[test]
fn chaos_quick_optimistic_survives_drop_dup() {
    let cfg = ChaosConfig::new(FaultProfile::drop_dup(), 3).with_strategy(Strategy::Optimistic);
    assert_healthy(&cfg);
}

#[test]
fn chaos_broken_dedupe_is_detected() {
    // Ablation: with BOTH dedupe/resequencing lines disabled, duplicated
    // and reordered deliveries reach the UMQ unfiltered. The suite must
    // catch the breakage — otherwise it could not catch a real regression
    // in the recovery path.
    let mut caught = 0u32;
    let mut injected = 0u64;
    for seed in [1, 2, 3, 5, 8] {
        let cfg = ChaosConfig::new(FaultProfile::drop_dup(), seed).broken_dedupe();
        let report = run_chaos(&cfg);
        injected += report.fault_injected;
        let broken = !report.converged || report.audit_violations > 0;
        if broken {
            caught += 1;
        }
    }
    assert!(injected > 0, "ablation runs must still inject faults");
    assert!(
        caught >= 2,
        "disabling recovery must corrupt the view on several seeds (caught {caught}/5)"
    );
}

/// The full acceptance grid: 8 seeds × 3 profiles × 2 strategies × 2
/// correction policies, every run audited at every commit. ~half a minute
/// in release mode; run via `scripts/verify.sh` or
/// `cargo test --release --test chaos_props -- --include-ignored`.
#[test]
#[ignore = "full grid; run with --include-ignored (scripts/verify.sh)"]
fn chaos_full_grid_terminates_and_converges() {
    let mut injected = 0u64;
    let mut parked = 0u64;
    let mut retried = 0u64;
    for profile in FaultProfile::all() {
        for seed in 0..8u64 {
            for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
                for policy in [CorrectionPolicy::MergeCycles, CorrectionPolicy::MergeAll] {
                    let cfg =
                        ChaosConfig::new(profile, seed).with_strategy(strategy).with_policy(policy);
                    let report = assert_healthy(&cfg);
                    injected += report.fault_injected;
                    parked += report.parked_steps;
                    retried += report.retry_attempts;
                }
            }
        }
    }
    assert!(injected > 0, "the grid must inject faults");
    assert!(retried > 0, "the crash/timeout profile must exercise the retry path");
    // Parking is possible but not guaranteed at these intensities; it is
    // covered deterministically by the unit test
    // `permanent_fault_exhausts_and_parks` in dyno-view.
    let _ = parked;
}

#[test]
#[ignore = "full grid companion; run with --include-ignored (scripts/verify.sh)"]
fn chaos_full_grid_is_deterministic() {
    // Same (profile, seed) twice → identical outcome, step count, fault
    // count, and simulated-time series.
    for profile in FaultProfile::all() {
        let cfg = ChaosConfig::new(profile, 4).with_strategy(Strategy::Optimistic);
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.converged, b.converged, "{}", profile.name);
        assert_eq!(a.steps, b.steps, "{}", profile.name);
        assert_eq!(a.fault_injected, b.fault_injected, "{}", profile.name);
        assert_eq!(a.metrics, b.metrics, "{}: bit-identical series", profile.name);
    }
}
