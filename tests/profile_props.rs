//! Properties of the per-operator cost profiler (DESIGN.md §18), asserted
//! at the facade level against real maintenance runs:
//!
//! * **conservation** — in a captured profile, every per-phase total is
//!   exactly the sum of that phase's child operator nodes, across every
//!   plan, for every column (calls, rows, cancellations, probes, and ns);
//! * **invisibility** — turning the profiler on changes no determinism
//!   surface: a monitored run's full JSON capture and a chaos run's
//!   convergence scalars and metrics registry are byte-identical with the
//!   profiler on and off;
//! * **lineage discipline** — the disabled gate path (the exact sequence
//!   instrumented callers execute when the profiler is off) performs zero
//!   heap allocations, measured with a counting global allocator.
#![cfg(feature = "proptest")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use dyno::obs::json::{parse, Value};
use dyno::obs::{Collector, NodeKey, OpPhase, OpSample};
use dyno::sim::{
    run_chaos, run_monitor, ChaosConfig, MonitorConfig, OpenLoopConfig, TestbedConfig,
};

/// Counts heap allocations made by *this thread* only, so the measurement
/// is immune to other tests running concurrently in the same binary.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// A short profiled open-loop run that exercises every plan family: SWEEP
/// seeds/hops/compensations, the warehouse pipeline, and (via the rename
/// storm) the Equation-6 adaptation path.
fn profiled_cfg(seed: u64) -> MonitorConfig {
    MonitorConfig {
        testbed: TestbedConfig { tuples_per_relation: 60, ..Default::default() },
        open_loop: OpenLoopConfig {
            duration_us: 10_000_000,
            du_per_sec: 4.0,
            sc_storms: 1,
            sc_storm_len: 1,
            sc_storm_gap_us: 1_000_000,
            ..Default::default()
        },
        workload_seed: seed,
        tenant_views: 2,
        umq_bound: Some(12),
        drain_windows: 4,
        profile: true,
        ..Default::default()
    }
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_num).unwrap_or_else(|| panic!("missing numeric `{key}`")) as u64
}

/// Every phase total in the rendered JSON equals the sum of that phase's
/// child nodes — for every plan and every column, including `ns`.
#[test]
fn phase_totals_are_conserved_sums_of_operator_nodes() {
    let report = run_monitor(&profiled_cfg(7)).expect("profiled run");
    assert!(report.profile.plan_count() > 0, "run captured no plans");

    let doc = parse(&report.profile.render_json()).expect("profile JSON parses");
    let plans = doc.get("profile").and_then(|p| p.get("plans")).and_then(Value::as_arr).unwrap();
    assert!(!plans.is_empty());
    let mut checked_nodes = 0usize;
    for plan in plans {
        let nodes = plan.get("nodes").and_then(Value::as_arr).unwrap();
        let phases = plan.get("phases").and_then(Value::as_obj).unwrap();
        for (phase, total) in phases {
            for col in ["calls", "rows_in", "rows_out", "cancelled", "probes", "ns"] {
                let node_sum: u64 = nodes
                    .iter()
                    .filter(|n| n.get("phase").and_then(Value::as_str) == Some(phase))
                    .map(|n| num(n, col))
                    .sum();
                assert_eq!(
                    node_sum,
                    num(total, col),
                    "phase `{phase}` column `{col}` is not the sum of its nodes in plan {:?}·{:?}",
                    plan.get("view"),
                    plan.get("scope"),
                );
            }
        }
        checked_nodes += nodes.len();
    }
    assert!(checked_nodes > 0, "conservation held vacuously — no nodes captured");

    // Renders are byte-stable for a fixed set of samples.
    assert_eq!(report.profile.render_json(), report.profile.render_json());
    assert_eq!(report.profile.render_text(None), report.profile.render_text(None));
}

/// The profiler cannot move a byte of any determinism surface: the
/// monitored run's combined JSON capture (run summary, registry series,
/// staleness lanes) is identical with the profiler on and off.
#[test]
fn monitor_capture_is_bit_identical_with_profiler_on_and_off() {
    let on = run_monitor(&profiled_cfg(42)).expect("profiled run");
    let off =
        run_monitor(&MonitorConfig { profile: false, ..profiled_cfg(42) }).expect("plain run");
    assert_eq!(on.to_json(), off.to_json(), "profiler leaked into the JSON capture");
    assert!(on.profile.plan_count() > 0);
    assert!(off.profile.is_empty());
}

/// Same property against the fault-injection path: a chaos run's extents
/// (via final extent size), convergence scalars, and entire metrics
/// registry are unchanged by the profiler.
#[test]
fn chaos_run_is_bit_identical_with_profiler_on_and_off() {
    for profile in dyno::fault::FaultProfile::all() {
        let base = ChaosConfig::new(profile, 11);
        let profiled = base.clone().with_profile();
        let off = run_chaos(&base);
        let on = run_chaos(&profiled);
        assert!(off.converged && on.converged, "{}: runs must converge", profile.name);
        assert_eq!(off.final_mv_len, on.final_mv_len, "{}: extent moved", profile.name);
        assert_eq!(off.steps, on.steps, "{}: steps moved", profile.name);
        assert_eq!(off.fault_injected, on.fault_injected, "{}", profile.name);
        assert_eq!(
            off.obs.metrics_text(),
            on.obs.metrics_text(),
            "{}: registry moved with the profiler on",
            profile.name
        );
        assert!(on.obs.profile_snapshot().plan_count() > 0, "{}", profile.name);
        assert!(off.obs.profile_snapshot().is_empty(), "{}", profile.name);
    }
}

/// The disabled path instrumented callers actually execute — one gate
/// check, or an early-returning record call — performs zero allocations.
#[test]
fn disabled_profiler_path_does_not_allocate() {
    let obs = Collector::wall();
    assert!(!obs.profile_on());
    // Warm up lazily-initialized state (TLS, collector internals) so the
    // measured loop sees steady state.
    obs.profile_invocation("V", "warm");
    obs.profile_op(
        "V",
        "warm",
        NodeKey { step: 0, phase: OpPhase::Seed, op: "warm", detail: String::new() },
        OpSample::default(),
    );

    let before = thread_allocations();
    for i in 0..10_000u64 {
        // The caller-side gate: cheap check, no timestamp, no key built.
        if obs.profile_on() {
            unreachable!("profiler is off");
        }
        // The store-side gates: both must bail before touching the map.
        obs.profile_invocation("V", "scope");
        obs.profile_op(
            "V",
            "scope",
            // An empty `String` does not allocate, so a disabled-path
            // allocation here can only come from the profiler itself.
            NodeKey { step: i as u32, phase: OpPhase::Seed, op: "noop", detail: String::new() },
            OpSample::default(),
        );
    }
    let delta = thread_allocations() - before;
    assert_eq!(delta, 0, "disabled profiler path allocated {delta} times in 10k iterations");
}
