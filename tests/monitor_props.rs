//! Properties of the monitored open-loop runner (DESIGN.md §14): the
//! telemetry stack — registry time series (`obs::timeseries`), per-view
//! staleness lanes and burn-rate SLO states (`obs::slo`) — observed against
//! the open-loop workload generator:
//!
//! * **burst** — a diurnal Zipfian load against a small admission bound
//!   sheds hard (nonzero `shed`, clamped extents) while producing a dense
//!   window series for every registry metric;
//! * **slow-source** — a rename train stalls maintenance until every lane
//!   pages (through warn first — the burn-rate ladder never skips a rung on
//!   the way up from ok), then recovers to ok over the drain windows;
//! * **determinism** — the entire report (every series point, transition,
//!   and counter) is a pure function of the seed.
//!
//! Scales are kept small (tens of simulated seconds, 60-tuple relations);
//! the full-size profiles live in `dyno-bench monitor`.

use dyno::obs::{SloPolicy, SloState};
use dyno::sim::{run_monitor, MonitorConfig, OpenLoopConfig, TestbedConfig};

fn small_testbed() -> TestbedConfig {
    TestbedConfig { tuples_per_relation: 60, ..Default::default() }
}

/// The bursty bounded-UMQ scenario at test scale.
fn burst_cfg() -> MonitorConfig {
    MonitorConfig {
        testbed: small_testbed(),
        open_loop: OpenLoopConfig {
            duration_us: 40_000_000,
            du_per_sec: 6.0,
            zipf_skew: 1.1,
            diurnal_amplitude: 0.9,
            diurnal_period_us: 10_000_000,
            sc_storms: 2,
            sc_storm_len: 2,
            sc_storm_gap_us: 2_000_000,
        },
        workload_seed: 42,
        tenant_views: 3,
        umq_bound: Some(8),
        slo: SloPolicy::target(15_000_000),
        drain_windows: 16,
        ..Default::default()
    }
}

/// The stalled-maintenance scenario. Full-size relations: the stall that
/// drives the page state is the cost of re-adapting the views, which
/// scales with the extent — at toy scale the train clears too fast to
/// breach the SLO.
fn slow_source_cfg() -> MonitorConfig {
    MonitorConfig {
        testbed: TestbedConfig { tuples_per_relation: 300, ..Default::default() },
        open_loop: OpenLoopConfig {
            duration_us: 40_000_000,
            du_per_sec: 1.0,
            sc_storms: 1,
            sc_storm_len: 8,
            sc_storm_gap_us: 2_000_000,
            ..Default::default()
        },
        workload_seed: 42,
        tenant_views: 3,
        umq_bound: None,
        slo: SloPolicy::target(3_000_000),
        drain_windows: 24,
        ..Default::default()
    }
}

#[test]
fn burst_profile_sheds_and_samples_densely() {
    let report = run_monitor(&burst_cfg()).expect("burst run");
    assert!(!report.exhausted, "must finish within the step budget");
    assert!(report.shed > 0, "the admission bound must actually shed");
    assert!(report.admitted > 0, "and still admit most of the load");
    assert!(report.sampler.windows() >= 20, "a dense window series");
    assert!(report.sampler.series_count() >= 3, "several registry series");
    assert!(
        report.sampler.counter_points("umq.shed").iter().any(|&(_, d)| d > 0),
        "sheds are visible as a per-window rate, not just a lifetime total"
    );
    // Shedding implies clamped deletes sooner or later; at minimum the
    // series must exist so a zero is a statement, not an omission.
    assert!(
        report.sampler.counter_points("view.clamped_rows").len() >= 20,
        "the clamp counter is sampled every window"
    );
    for (name, _) in report.tracker.states() {
        let (count, _p50, _p95, p99) = report.tracker.lifetime(
            report.tracker.view_names().iter().position(|n| *n == name).expect("lane exists"),
        );
        assert!(count > 0, "lane {name} measured refreshes");
        assert!(p99 > 0, "lane {name} has a lifetime p99");
    }
}

#[test]
fn slow_source_pages_then_recovers() {
    let report = run_monitor(&slow_source_cfg()).expect("slow-source run");
    assert!(!report.exhausted);
    let transitions = report.tracker.transitions();
    assert!(
        transitions.iter().any(|(_, _, _, to)| *to == SloState::Page),
        "the stall must page at least one lane: {transitions:?}"
    );
    // The burn-rate ladder climbs rung by rung: a lane can only reach page
    // from warn, so its first page transition must be preceded by its own
    // ok→warn.
    for (at, view, _from, to) in &transitions {
        if *to == SloState::Page {
            assert!(
                transitions
                    .iter()
                    .any(|(a2, v2, _, t2)| v2 == view && *t2 == SloState::Warn && a2 <= at),
                "{view} paged at {at} without warning first: {transitions:?}"
            );
        }
    }
    for (name, state) in &report.final_states {
        assert_eq!(*state, SloState::Ok, "lane {name} must recover over the drain windows");
    }
}

#[test]
fn dropped_lane_stops_contributing_to_burn_rate_evaluation() {
    // Regression: lanes registered by `Warehouse::initialize` were never
    // deregistered, so a rotated-out tenant view kept aging forever and
    // eventually paged the SLO on traffic it no longer consumed.
    use dyno::obs::StalenessTracker;

    let tracker = StalenessTracker::new(64);
    tracker.set_slo(SloPolicy::target(1_000));
    tracker.set_cadence(1_000_000, 0);
    let a = tracker.register_view("A", &[0]);
    let b = tracker.register_view("B", &[0]);
    let c = tracker.register_view("C", &[1]);

    // One commit each view reads, refreshed only by A and C: B is now the
    // tenant being rotated out with a commit still pending.
    tracker.note_commit(0, 1, 10);
    tracker.note_commit(1, 1, 10);
    tracker.note_refresh_for(a, &[(0, 1)], 500);
    tracker.note_refresh_for(c, &[(1, 1)], 500);
    assert!(tracker.current_staleness_us(b, 1_000) > 0, "B's pending commit is aging");

    tracker.drop_view(b);
    assert!(tracker.is_retired(b));
    assert!(!tracker.is_retired(a) && !tracker.is_retired(c), "peers untouched");
    assert_eq!(
        tracker.current_staleness_us(b, u64::MAX / 2),
        0,
        "retirement discards the pending backlog"
    );

    // New commits and refreshes no longer touch the tombstoned lane…
    tracker.note_commit(0, 2, 2_000);
    assert_eq!(tracker.current_staleness_us(b, 1_000_000), 0, "retired lanes ignore commits");
    let (count_before, ..) = tracker.lifetime(b);
    tracker.note_refresh_for(b, &[(0, 2)], 2_500);
    let (count_after, ..) = tracker.lifetime(b);
    assert_eq!(count_before, count_after, "refreshing a retired lane is a no-op");

    // …while surviving lanes keep their indexes and keep measuring.
    tracker.note_refresh_for(a, &[(0, 2)], 3_000);
    let (a_count, ..) = tracker.lifetime(a);
    assert_eq!(a_count, 2, "A resolved both commits under its stable index");

    // Burn-rate evaluation over many windows of un-refreshed aging: the
    // survivors may escalate, the retired lane must stay out of the ladder.
    tracker.note_commit(1, 2, 3_000);
    tracker.maybe_sample(80_000_000);
    let states = tracker.states();
    assert_eq!(states.len(), 3, "tombstoned in place: indices stay stable");
    assert_eq!(states[b].1, SloState::Ok, "a rotated-out view can never warn or page");
    assert_ne!(states[c].1, SloState::Ok, "a live stalled lane still escalates");
}

#[test]
fn monitor_report_is_a_pure_function_of_the_seed() {
    let a = run_monitor(&burst_cfg()).expect("run a").to_json();
    let b = run_monitor(&burst_cfg()).expect("run b").to_json();
    assert_eq!(a, b, "same seed, byte-identical report");
    let c =
        run_monitor(&MonitorConfig { workload_seed: 7, ..burst_cfg() }).expect("run c").to_json();
    assert_ne!(a, c, "a different seed moves the series");
}
