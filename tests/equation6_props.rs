//! Property test for paper Equation 6: the incremental n-way-join delta
//! equals full recomputation over the new states diffed against the old
//! extent, for arbitrary relation states and arbitrary signed deltas.

use std::collections::HashMap;

use proptest::prelude::*;

use dyno::prelude::*;
use dyno::relational::SignedBag;
use dyno::view::{equation6_delta, LocalProvider, ViewDefinition};

fn schema(i: usize) -> Schema {
    Schema::of(&format!("R{i}"), &[("k", AttrType::Int), ("v", AttrType::Int)])
}

fn view(n: usize) -> ViewDefinition {
    let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
    let mut b = SpjQuery::over(names.clone());
    for (i, name) in names.iter().enumerate() {
        b = b.select_as(name, "v", &format!("v{i}"));
    }
    for w in names.windows(2) {
        b = b.join_eq((w[0].as_str(), "k"), (w[1].as_str(), "k"));
    }
    ViewDefinition::new("V", b.build())
}

prop_compose! {
    fn rel_rows()(rows in prop::collection::vec(((0..5i64), (0..3i64), 1..3i64), 0..8))
        -> Vec<(Tuple, i64)> {
        rows.into_iter().map(|(k, v, c)| (Tuple::of([k, v]), c)).collect()
    }
}

prop_compose! {
    /// A delta that only deletes tuples that exist (so `old + delta` stays a
    /// valid relation) and inserts new ones.
    fn delta_rows()(rows in prop::collection::vec(((0..5i64), (3..6i64), 1..3i64), 0..6))
        -> Vec<(Tuple, i64)> {
        rows.into_iter().map(|(k, v, c)| (Tuple::of([k, v]), c)).collect()
    }
}

proptest! {
    /// ΔV from Equation 6 equals eval(V, new states) − eval(V, old states),
    /// with up to all relations changing at once.
    #[test]
    fn equation6_equals_recompute_diff(
        states in prop::collection::vec(rel_rows(), 3),
        inserts in prop::collection::vec(delta_rows(), 3),
        changed_mask in 0u8..8,
    ) {
        let n = 3;
        let view = view(n);
        let mut old: HashMap<String, (Schema, SignedBag)> = HashMap::new();
        for (i, rows) in states.iter().enumerate() {
            old.insert(format!("R{i}"), (schema(i), rows.iter().cloned().collect()));
        }
        let mut deltas: HashMap<String, SignedBag> = HashMap::new();
        for (i, rows) in inserts.iter().enumerate() {
            if changed_mask & (1 << i) != 0 {
                let mut d: SignedBag = rows.iter().cloned().collect();
                // Also delete half of the existing tuples of this relation,
                // exercising negative multiplicities.
                for (j, (t, c)) in states[i].iter().enumerate() {
                    if j % 2 == 0 {
                        d.add(t.clone(), -c);
                    }
                }
                deltas.insert(format!("R{i}"), d);
            }
        }

        let dv = equation6_delta(&view.query, &old, &deltas).expect("well-formed");

        let eval_over = |pick_new: bool| -> SignedBag {
            let mut p = LocalProvider::new();
            for (name, (schema, rows)) in &old {
                let mut r = rows.clone();
                if pick_new {
                    if let Some(d) = deltas.get(name) {
                        r.merge(d);
                    }
                }
                p.insert(schema.clone(), r);
            }
            dyno::relational::eval(&view.query, &p).expect("well-formed").rows
        };
        let expected = eval_over(true).diff(&eval_over(false));
        prop_assert_eq!(dv.rows, expected);
    }

    /// An empty delta map yields an empty ΔV.
    #[test]
    fn equation6_no_change_is_empty(states in prop::collection::vec(rel_rows(), 3)) {
        let view = view(3);
        let mut old: HashMap<String, (Schema, SignedBag)> = HashMap::new();
        for (i, rows) in states.iter().enumerate() {
            old.insert(format!("R{i}"), (schema(i), rows.iter().cloned().collect()));
        }
        let dv = equation6_delta(&view.query, &old, &HashMap::new()).expect("well-formed");
        prop_assert!(dv.rows.is_empty());
    }
}
