//! Randomized test for paper Equation 6: the incremental n-way-join delta
//! equals full recomputation over the new states diffed against the old
//! extent, for arbitrary relation states and arbitrary signed deltas.
#![cfg(feature = "proptest")]

use std::collections::HashMap;

use dyno::prelude::*;
use dyno::relational::SignedBag;
use dyno::sim::Rng;
use dyno::view::{equation6_delta, LocalProvider, ViewDefinition};

fn schema(i: usize) -> Schema {
    Schema::of(&format!("R{i}"), &[("k", AttrType::Int), ("v", AttrType::Int)])
}

fn view(n: usize) -> ViewDefinition {
    let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
    let mut b = SpjQuery::over(names.clone());
    for (i, name) in names.iter().enumerate() {
        b = b.select_as(name, "v", &format!("v{i}"));
    }
    for w in names.windows(2) {
        b = b.join_eq((w[0].as_str(), "k"), (w[1].as_str(), "k"));
    }
    ViewDefinition::new("V", b.build())
}

/// 0..8 rows over keys 0..5, values 0..3, multiplicities 1..3.
fn rel_rows(rng: &mut Rng) -> Vec<(Tuple, i64)> {
    let n = rng.gen_range(0..8usize);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..5i64);
            let v = rng.gen_range(0..3i64);
            let c = rng.gen_range(1..3i64);
            (Tuple::of([k, v]), c)
        })
        .collect()
}

/// Insert rows disjoint from [`rel_rows`] (values 3..6), so `old + delta`
/// stays a valid relation after the deletes the test mixes in.
fn delta_rows(rng: &mut Rng) -> Vec<(Tuple, i64)> {
    let n = rng.gen_range(0..6usize);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..5i64);
            let v = rng.gen_range(3..6i64);
            let c = rng.gen_range(1..3i64);
            (Tuple::of([k, v]), c)
        })
        .collect()
}

/// ΔV from Equation 6 equals eval(V, new states) − eval(V, old states),
/// with up to all relations changing at once.
#[test]
fn equation6_equals_recompute_diff() {
    let mut rng = Rng::new(0xE6_4517);
    for case in 0..64 {
        let n = 3;
        let states: Vec<Vec<(Tuple, i64)>> = (0..n).map(|_| rel_rows(&mut rng)).collect();
        let inserts: Vec<Vec<(Tuple, i64)>> = (0..n).map(|_| delta_rows(&mut rng)).collect();
        let changed_mask = rng.gen_range(0..8u32) as u8;

        let view = view(n);
        let mut old: HashMap<String, (Schema, SignedBag)> = HashMap::new();
        for (i, rows) in states.iter().enumerate() {
            old.insert(format!("R{i}"), (schema(i), rows.iter().cloned().collect()));
        }
        let mut deltas: HashMap<String, SignedBag> = HashMap::new();
        for (i, rows) in inserts.iter().enumerate() {
            if changed_mask & (1 << i) != 0 {
                let mut d: SignedBag = rows.iter().cloned().collect();
                // Also delete half of the existing tuples of this relation,
                // exercising negative multiplicities.
                for (j, (t, c)) in states[i].iter().enumerate() {
                    if j % 2 == 0 {
                        d.add(t.clone(), -c);
                    }
                }
                deltas.insert(format!("R{i}"), d);
            }
        }

        let dv = equation6_delta(&view.query, &old, &deltas).expect("well-formed");

        let eval_over = |pick_new: bool| -> SignedBag {
            let mut p = LocalProvider::new();
            for (name, (schema, rows)) in &old {
                let mut r = rows.clone();
                if pick_new {
                    if let Some(d) = deltas.get(name) {
                        r.merge(d);
                    }
                }
                p.insert(schema.clone(), r);
            }
            dyno::relational::eval(&view.query, &p).expect("well-formed").rows
        };
        let expected = eval_over(true).diff(&eval_over(false));
        assert_eq!(dv.rows, expected, "case {case}");
    }
}

/// An empty delta map yields an empty ΔV.
#[test]
fn equation6_no_change_is_empty() {
    let mut rng = Rng::new(0xE6_0517);
    for case in 0..32 {
        let view = view(3);
        let mut old: HashMap<String, (Schema, SignedBag)> = HashMap::new();
        for i in 0..3 {
            let rows = rel_rows(&mut rng);
            old.insert(format!("R{i}"), (schema(i), rows.into_iter().collect()));
        }
        let dv = equation6_delta(&view.query, &old, &HashMap::new()).expect("well-formed");
        assert!(dv.rows.is_empty(), "case {case}");
    }
}
