//! Randomized test for Section-5 update homogenization: applying a delta
//! and then a schema-change sequence to a relation equals applying the
//! sequence first and then the *homogenized* delta —
//! `changes(R ⊎ Δ) = changes(R) ⊎ homogenize(Δ, changes)`.
#![cfg(feature = "proptest")]

use dyno::prelude::*;
use dyno::sim::Rng;
use dyno::view::homogenize_delta;

fn base_relation() -> Relation {
    Relation::from_tuples(
        Schema::of("T", &[("a", AttrType::Int), ("b", AttrType::Int), ("c", AttrType::Int)]),
        [Tuple::of([1i64, 2, 3]), Tuple::of([4i64, 5, 6])],
    )
    .expect("static fixture")
}

/// A consistent schema-change walk over `T` (renames, drops, adds), plus an
/// insert-only delta valid against the *initial* schema. The walk is built
/// exactly like the sources would build it: by tracking the evolving schema.
fn walk_and_delta(rng: &mut Rng) -> (Vec<SchemaChange>, Delta) {
    let n_ops = rng.gen_range(0..6usize);
    let mut rel = base_relation();
    let mut name = "T".to_string();
    let mut serial = 0u32;
    let mut changes = Vec::new();
    for _ in 0..n_ops {
        let op = rng.gen_range(0..4u32) as u8;
        let pick = rng.gen_range(0..8usize);
        let attrs: Vec<String> = rel.schema().attrs().iter().map(|a| a.name.clone()).collect();
        let change = match op {
            0 => {
                serial += 1;
                let to = format!("T{serial}");
                let c = SchemaChange::RenameRelation { from: name.clone(), to: to.clone() };
                name = to;
                c
            }
            1 if !attrs.is_empty() => {
                serial += 1;
                SchemaChange::RenameAttribute {
                    relation: name.clone(),
                    from: attrs[pick % attrs.len()].clone(),
                    to: format!("x{serial}"),
                }
            }
            2 if attrs.len() > 1 => SchemaChange::DropAttribute {
                relation: name.clone(),
                attr: attrs[pick % attrs.len()].clone(),
            },
            _ => {
                serial += 1;
                SchemaChange::AddAttribute {
                    relation: name.clone(),
                    attr: Attribute::new(format!("n{serial}"), AttrType::Int),
                    default: Value::from(-1),
                }
            }
        };
        rel = dyno::relational::apply_to_relation(&rel, &change)
            .expect("walk is consistent")
            .expect("relation survives");
        changes.push(change);
    }
    let n_rows = rng.gen_range(0..5usize);
    let rows: Vec<Tuple> = (0..n_rows)
        .map(|_| {
            let a = rng.gen_range(10..20i64);
            let b = rng.gen_range(10..20i64);
            let c = rng.gen_range(10..20i64);
            Tuple::of([a, b, c])
        })
        .collect();
    let delta = Delta::inserts(base_relation().schema().clone(), rows)
        .expect("rows match the initial schema");
    (changes, delta)
}

fn apply_changes(rel: &Relation, changes: &[SchemaChange]) -> Relation {
    let mut r = rel.clone();
    for c in changes {
        r = dyno::relational::apply_to_relation(&r, c)
            .expect("consistent walk")
            .expect("relation survives");
    }
    r
}

#[test]
fn homogenization_commutes_with_schema_evolution() {
    let mut rng = Rng::new(0x404_4517);
    for case in 0..64 {
        let (changes, delta) = walk_and_delta(&mut rng);

        // Path 1: apply the delta first, then evolve the schema.
        let mut with_delta = base_relation();
        with_delta.apply(&delta).expect("pure inserts");
        let evolved_then = apply_changes(&with_delta, &changes);

        // Path 2: evolve the schema first, then apply the homogenized delta.
        let mut evolved = apply_changes(&base_relation(), &changes);
        let homogenized = homogenize_delta(&delta, &changes).expect("consistent walk");
        evolved.apply(&homogenized).expect("homogenized delta fits the evolved schema");

        assert_eq!(evolved_then, evolved, "case {case}: {changes:?}");
    }
}
