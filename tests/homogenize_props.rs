//! Property test for Section-5 update homogenization: applying a delta and
//! then a schema-change sequence to a relation equals applying the sequence
//! first and then the *homogenized* delta —
//! `changes(R ⊎ Δ) = changes(R) ⊎ homogenize(Δ, changes)`.

use proptest::prelude::*;
// Explicit import disambiguates from `dyno`'s scheduling `Strategy`.
use proptest::strategy::Strategy;

use dyno::prelude::*;
use dyno::view::homogenize_delta;

fn base_relation() -> Relation {
    Relation::from_tuples(
        Schema::of("T", &[("a", AttrType::Int), ("b", AttrType::Int), ("c", AttrType::Int)]),
        [Tuple::of([1i64, 2, 3]), Tuple::of([4i64, 5, 6])],
    )
    .expect("static fixture")
}

/// A consistent schema-change walk over `T` (renames, drops, adds), plus an
/// insert-only delta valid against the *initial* schema.
fn walk_and_delta() -> impl Strategy<Value = (Vec<SchemaChange>, Delta)> {
    let ops = prop::collection::vec((0u8..4, 0usize..8), 0..6);
    let rows = prop::collection::vec((10i64..20, 10i64..20, 10i64..20), 0..5);
    (ops, rows).prop_map(|(ops, rows)| {
        // Build the walk exactly like the sources would: track the schema.
        let mut rel = base_relation();
        let mut name = "T".to_string();
        let mut serial = 0u32;
        let mut changes = Vec::new();
        for (op, pick) in ops {
            let attrs: Vec<String> =
                rel.schema().attrs().iter().map(|a| a.name.clone()).collect();
            let change = match op {
                0 => {
                    serial += 1;
                    let to = format!("T{serial}");
                    let c = SchemaChange::RenameRelation { from: name.clone(), to: to.clone() };
                    name = to;
                    c
                }
                1 if !attrs.is_empty() => {
                    serial += 1;
                    SchemaChange::RenameAttribute {
                        relation: name.clone(),
                        from: attrs[pick % attrs.len()].clone(),
                        to: format!("x{serial}"),
                    }
                }
                2 if attrs.len() > 1 => SchemaChange::DropAttribute {
                    relation: name.clone(),
                    attr: attrs[pick % attrs.len()].clone(),
                },
                _ => {
                    serial += 1;
                    SchemaChange::AddAttribute {
                        relation: name.clone(),
                        attr: Attribute::new(format!("n{serial}"), AttrType::Int),
                        default: Value::from(-1),
                    }
                }
            };
            rel = dyno::relational::apply_to_relation(&rel, &change)
                .expect("walk is consistent")
                .expect("relation survives");
            changes.push(change);
        }
        let delta = Delta::inserts(
            base_relation().schema().clone(),
            rows.into_iter().map(|(a, b, c)| Tuple::of([a, b, c])),
        )
        .expect("rows match the initial schema");
        (changes, delta)
    })
}

fn apply_changes(rel: &Relation, changes: &[SchemaChange]) -> Relation {
    let mut r = rel.clone();
    for c in changes {
        r = dyno::relational::apply_to_relation(&r, c)
            .expect("consistent walk")
            .expect("relation survives");
    }
    r
}

proptest! {
    #[test]
    fn homogenization_commutes_with_schema_evolution((changes, delta) in walk_and_delta()) {
        // Path 1: apply the delta first, then evolve the schema.
        let mut with_delta = base_relation();
        with_delta.apply(&delta).expect("pure inserts");
        let evolved_then = apply_changes(&with_delta, &changes);

        // Path 2: evolve the schema first, then apply the homogenized delta.
        let mut evolved = apply_changes(&base_relation(), &changes);
        let homogenized = homogenize_delta(&delta, &changes).expect("consistent walk");
        evolved.apply(&homogenized).expect("homogenized delta fits the evolved schema");

        prop_assert_eq!(evolved_then, evolved);
    }
}
