//! End-to-end randomized test for the multi-view warehouse: under arbitrary
//! DU/SC interleavings, every view converges to its (current) definition
//! evaluated over the final source states, and all views advance through
//! the same per-source state vector.
#![cfg(feature = "proptest")]

use dyno::core::Strategy as Detection;
use dyno::prelude::*;
use dyno::sim::{build_space, EventKind, Rng, TestbedConfig};
use dyno::view::Warehouse;

/// Three views of different widths over the six-relation testbed.
fn views(cfg: &TestbedConfig) -> Vec<ViewDefinition> {
    let full = dyno::sim::build_view(cfg);
    let narrow = ViewDefinition::new(
        "Narrow",
        SpjQuery::over(["R0", "R1"])
            .select_as("R0", "K", "k")
            .select_as("R0", "A1", "a")
            .select_as("R1", "A1", "b")
            .join_eq(("R0", "K"), ("R1", "K"))
            .build(),
    );
    let single = ViewDefinition::new(
        "Single",
        SpjQuery::over(["R4"]).select_as("R4", "K", "k").select_as("R4", "A2", "v").build(),
    );
    vec![full, narrow, single]
}

const KINDS: [EventKind; 5] = [
    EventKind::DataUpdate,
    EventKind::DataUpdate,
    EventKind::DataUpdate,
    EventKind::RenameRelation,
    EventKind::DropAttribute,
];

#[test]
fn all_views_converge_under_any_interleaving() {
    let mut rng = Rng::new(0x3A4_4517);
    for case in 0..12 {
        let n_events = rng.gen_range(1..10usize);
        let timeline: Vec<(u64, EventKind)> =
            (0..n_events).map(|i| (i as u64, *rng.choose(&KINDS))).collect();
        let seed = rng.gen_range(0..500u64);
        let strategy = if rng.gen_range(0..2u32) == 0 {
            Detection::Pessimistic
        } else {
            Detection::Optimistic
        };

        let cfg = TestbedConfig { tuples_per_relation: 40, ..Default::default() };
        let space = build_space(&cfg);
        let info = space.info().clone();
        let mut gen = WorkloadGen::new(cfg, seed);
        let schedule = gen.realize(&timeline);

        let mut port = InProcessPort::new(space);
        let mut wh = Warehouse::new(info, strategy);
        for v in views(&cfg) {
            wh.add_view(v);
        }
        wh.initialize(&mut port).expect("testbed initializes");
        for c in schedule {
            port.commit(c.source, c.update).expect("workload is schema-consistent");
        }
        // A drop of an attribute a view projects is pruned by VS (no
        // replacements are registered in the testbed) — legal, and the
        // convergence check below still applies to the *rewritten* view.
        wh.run_to_quiescence(&mut port, 5_000).expect("quiesces");

        for i in 0..wh.view_count() {
            let expected = dyno::relational::eval(&wh.view(i).query, &port.space().provider())
                .expect("final definitions are valid");
            assert_eq!(
                wh.mv(i).extent(),
                &expected.rows,
                "case {case}: view {i} did not converge under {strategy:?}"
            );
        }
    }
}
