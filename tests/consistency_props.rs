//! End-to-end randomized test of the paper's correctness claims (Section
//! 4.4): for arbitrary interleavings of data updates and schema changes,
//! under both detection strategies, the view manager
//!
//! * converges (final extent = view over final source states),
//! * maintains strong consistency (after every commit the extent matches
//!   the exact per-source state vector it claims to reflect),
//! * never leaves scheduled commits unapplied, and
//! * terminates within its step budget.
//!
//! Cases are drawn from the in-repo seeded PRNG (`dyno::sim::Rng`), so
//! every run replays the same case set and a failure is reproducible.
#![cfg(feature = "proptest")]

use dyno::core::Strategy as Detection;
use dyno::prelude::*;
use dyno::sim::{build_testbed, EventKind, Rng};

const KINDS: [EventKind; 6] = [
    EventKind::DataUpdate,
    EventKind::DataUpdate,
    EventKind::DataDelete,
    EventKind::RenameRelation,
    EventKind::DropAttribute,
    EventKind::AddAttribute,
];

/// A random timeline: 1..14 events with random kinds at random times within
/// a 60-simulated-second window (the conflict-prone regime: a schema
/// change's maintenance takes ~25 s).
fn timeline(rng: &mut Rng) -> Vec<(u64, EventKind)> {
    let n = rng.gen_range(1..14usize);
    let mut t: Vec<(u64, EventKind)> =
        (0..n).map(|_| (rng.gen_range(0..60u64) * 1_000_000, *rng.choose(&KINDS))).collect();
    t.sort_by_key(|e| e.0);
    t
}

#[test]
fn any_interleaving_converges_with_strong_consistency() {
    let mut rng = Rng::new(0xC0_4517);
    for case in 0..24 {
        let timeline = timeline(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        for strategy in [Detection::Pessimistic, Detection::Optimistic] {
            let cfg = TestbedConfig { tuples_per_relation: 60, ..Default::default() };
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, seed);
            let schedule = gen.realize(&timeline);
            let report = run_scenario(
                Scenario::new(space, view, schedule).with_strategy(strategy).with_audit(),
            )
            .expect("no hard failures on testbed workloads");
            assert!(!report.exhausted, "case {case} {strategy:?}: step budget exhausted");
            assert_eq!(
                report.metrics.skipped_commits, 0,
                "case {case} {strategy:?}: workload generator must stay schema-consistent"
            );
            assert!(report.converged, "case {case} {strategy:?}: view did not converge");
            assert_eq!(
                report.audit_violations, 0,
                "case {case} {strategy:?}: strong consistency violated"
            );
        }
    }
}

/// DU-only interleavings additionally never abort and never build a
/// dependency graph (the O(1) fast path).
#[test]
fn du_only_interleavings_use_fast_path() {
    let mut rng = Rng::new(0xD0_4517);
    for case in 0..24 {
        let n_events = rng.gen_range(1..20usize);
        let mut timeline: Vec<(u64, EventKind)> = (0..n_events)
            .map(|_| (rng.gen_range(0..30u64) * 1_000_000, EventKind::DataUpdate))
            .collect();
        timeline.sort_by_key(|e| e.0);
        let seed = rng.gen_range(0..1000u64);
        let cfg = TestbedConfig { tuples_per_relation: 60, ..Default::default() };
        let (space, view) = build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, seed);
        let schedule = gen.realize(&timeline);
        let n = schedule.len() as u64;
        let report = run_scenario(
            Scenario::new(space, view, schedule).with_strategy(Detection::Pessimistic).with_audit(),
        )
        .expect("DU-only runs cannot fail");
        assert!(report.converged, "case {case}");
        assert_eq!(report.audit_violations, 0, "case {case}");
        assert_eq!(report.metrics.aborts, 0, "case {case}");
        assert_eq!(report.dyno_stats.graph_builds, 0, "case {case}");
        assert_eq!(report.view_stats.du_committed, n, "case {case}");
    }
}

/// The observability registry is a faithful projection: over random traced
/// workloads, the `sim.*` counters always equal the `sim::Metrics` the
/// report carries (they are the same cells, read two ways).
#[test]
fn registry_totals_project_sim_metrics() {
    let mut rng = Rng::new(0x0B5_4517);
    for case in 0..12 {
        let timeline = timeline(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let strategy = if rng.gen_range(0..2u32) == 0 {
            Detection::Pessimistic
        } else {
            Detection::Optimistic
        };
        let cfg = TestbedConfig { tuples_per_relation: 60, ..Default::default() };
        let (space, view) = build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, seed);
        let schedule = gen.realize(&timeline);
        let report = run_scenario(
            Scenario::new(space, view, schedule).with_strategy(strategy).with_tracing(),
        )
        .expect("testbed workloads succeed");
        let reg = report.obs.registry();
        let counter = |name: &str| reg.counter_value(name).unwrap_or(0);
        assert_eq!(counter("sim.committed_us"), report.metrics.committed_us, "case {case}");
        assert_eq!(counter("sim.abort_us"), report.metrics.abort_us, "case {case}");
        assert_eq!(counter("sim.committed_sc_us"), report.metrics.committed_sc_us, "case {case}");
        assert_eq!(counter("sim.abort_sc_us"), report.metrics.abort_sc_us, "case {case}");
        assert_eq!(counter("sim.queries"), report.metrics.queries, "case {case}");
        assert_eq!(counter("sim.aborts"), report.metrics.aborts, "case {case}");
        assert_eq!(counter("sim.attempts"), report.metrics.attempts, "case {case}");
        assert_eq!(counter("sim.skipped_commits"), report.metrics.skipped_commits, "case {case}");
    }
}
