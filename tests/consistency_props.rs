//! End-to-end property test of the paper's correctness claims (Section 4.4):
//! for arbitrary interleavings of data updates and schema changes, under
//! both detection strategies, the view manager
//!
//! * converges (final extent = view over final source states),
//! * maintains strong consistency (after every commit the extent matches
//!   the exact per-source state vector it claims to reflect),
//! * never leaves scheduled commits unapplied, and
//! * terminates within its step budget.

use proptest::prelude::*;

use dyno::core::Strategy as Detection;
use dyno::prelude::*;
use dyno::sim::{build_testbed, EventKind};

prop_compose! {
    /// A random timeline: events with random kinds at random times within a
    /// 60-simulated-second window (the conflict-prone regime: a schema
    /// change's maintenance takes ~25 s).
    fn timeline()(
        events in prop::collection::vec(
            ((0u64..60), prop::sample::select(vec![
                EventKind::DataUpdate,
                EventKind::DataUpdate,
                EventKind::DataDelete,
                EventKind::RenameRelation,
                EventKind::DropAttribute,
                EventKind::AddAttribute,
            ])),
            1..14
        )
    ) -> Vec<(u64, EventKind)> {
        let mut t: Vec<(u64, EventKind)> =
            events.into_iter().map(|(s, k)| (s * 1_000_000, k)).collect();
        t.sort_by_key(|e| e.0);
        // At most 3 attribute drops fit the testbed (3 extra attrs; dropping
        // more is fine for the generator but thins the view quickly).
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_interleaving_converges_with_strong_consistency(
        timeline in timeline(),
        seed in 0u64..1000,
    ) {
        for strategy in [Detection::Pessimistic, Detection::Optimistic] {
            let cfg = TestbedConfig { tuples_per_relation: 60, ..Default::default() };
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, seed);
            let schedule = gen.realize(&timeline);
            let report = run_scenario(
                Scenario::new(space, view, schedule)
                    .with_strategy(strategy)
                    .with_audit(),
            )
            .expect("no hard failures on testbed workloads");
            prop_assert!(!report.exhausted, "{strategy:?}: step budget exhausted");
            prop_assert_eq!(report.metrics.skipped_commits, 0,
                "{:?}: workload generator must stay schema-consistent", strategy);
            prop_assert!(report.converged, "{strategy:?}: view did not converge");
            prop_assert_eq!(report.audit_violations, 0,
                "{:?}: strong consistency violated", strategy);
        }
    }

    /// DU-only interleavings additionally never abort and never build a
    /// dependency graph (the O(1) fast path).
    #[test]
    fn du_only_interleavings_use_fast_path(
        times in prop::collection::vec(0u64..30, 1..20),
        seed in 0u64..1000,
    ) {
        let mut timeline: Vec<(u64, EventKind)> =
            times.into_iter().map(|s| (s * 1_000_000, EventKind::DataUpdate)).collect();
        timeline.sort_by_key(|e| e.0);
        let cfg = TestbedConfig { tuples_per_relation: 60, ..Default::default() };
        let (space, view) = build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, seed);
        let schedule = gen.realize(&timeline);
        let n = schedule.len() as u64;
        let report = run_scenario(
            Scenario::new(space, view, schedule)
                .with_strategy(Detection::Pessimistic)
                .with_audit(),
        )
        .expect("DU-only runs cannot fail");
        prop_assert!(report.converged);
        prop_assert_eq!(report.audit_violations, 0);
        prop_assert_eq!(report.metrics.aborts, 0);
        prop_assert_eq!(report.dyno_stats.graph_builds, 0);
        prop_assert_eq!(report.view_stats.du_committed, n);
    }
}
