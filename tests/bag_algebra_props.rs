//! Property tests for the bag algebra underlying incremental maintenance:
//! the identity `(R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S` and its supporting laws are
//! what make SWEEP compensation and Equation 6 correct.

use proptest::prelude::*;
// Explicit import disambiguates from `dyno`'s scheduling `Strategy`.
use proptest::strategy::Strategy;

use dyno::prelude::*;
use dyno::relational::SignedBag;
use dyno::view::LocalProvider;

fn r_schema() -> Schema {
    Schema::of("R", &[("k", AttrType::Int), ("a", AttrType::Int)])
}

fn s_schema() -> Schema {
    Schema::of("S", &[("k", AttrType::Int), ("b", AttrType::Int)])
}

prop_compose! {
    /// A small signed bag of (k, v) tuples with keys in a narrow range so
    /// joins actually match.
    fn signed_rows(max_count: i64)(
        rows in prop::collection::vec(((0..6i64), (0..4i64), (-max_count..=max_count)), 0..12)
    ) -> Vec<(Tuple, i64)> {
        rows.into_iter()
            .map(|(k, v, c)| (Tuple::of([k, v]), c))
            .collect()
    }
}

fn bag_of(rows: &[(Tuple, i64)]) -> SignedBag {
    rows.iter().cloned().collect()
}

/// Non-negative bag (a relation state).
fn relation_rows() -> impl Strategy<Value = Vec<(Tuple, i64)>> {
    signed_rows(3).prop_map(|rows| {
        rows.into_iter().map(|(t, c)| (t, c.abs())).collect()
    })
}

fn join_query() -> SpjQuery {
    SpjQuery::over(["R", "S"])
        .select("R", "a")
        .select("S", "b")
        .join_eq(("R", "k"), ("S", "k"))
        .build()
}

fn eval_rs(r: SignedBag, s: SignedBag) -> SignedBag {
    let mut p = LocalProvider::new();
    p.insert(r_schema(), r);
    p.insert(s_schema(), s);
    dyno::relational::eval(&join_query(), &p).expect("well-typed join").rows
}

proptest! {
    /// merge/diff are inverse; negation cancels.
    #[test]
    fn merge_diff_inverse(a in signed_rows(4), b in signed_rows(4)) {
        let (a, b) = (bag_of(&a), bag_of(&b));
        let mut m = a.clone();
        m.merge(&b);
        prop_assert_eq!(m.diff(&b), a.clone());
        let mut z = a.clone();
        z.merge(&a.negated());
        prop_assert!(z.is_empty());
    }

    /// merge is commutative and associative.
    #[test]
    fn merge_commutative_associative(
        a in signed_rows(4), b in signed_rows(4), c in signed_rows(4)
    ) {
        let (a, b, c) = (bag_of(&a), bag_of(&b), bag_of(&c));
        let mut ab = a.clone(); ab.merge(&b);
        let mut ba = b.clone(); ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut ab_c = ab.clone(); ab_c.merge(&c);
        let mut bc = b.clone(); bc.merge(&c);
        let mut a_bc = a.clone(); a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// The incremental-maintenance identity: (R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S.
    #[test]
    fn join_distributes_over_delta(
        r in relation_rows(), delta in signed_rows(2), s in relation_rows()
    ) {
        let (r, delta, s) = (bag_of(&r), bag_of(&delta), bag_of(&s));
        let mut r_plus = r.clone();
        r_plus.merge(&delta);
        let full = eval_rs(r_plus, s.clone());
        let mut incremental = eval_rs(r, s.clone());
        incremental.merge(&eval_rs(delta, s));
        prop_assert_eq!(full, incremental);
    }

    /// Projection is linear: π(A + B) = π(A) + π(B).
    #[test]
    fn projection_linear(a in signed_rows(3), b in signed_rows(3)) {
        let (a, b) = (bag_of(&a), bag_of(&b));
        let mut sum = a.clone();
        sum.merge(&b);
        let lhs = sum.project(&[0]);
        let mut rhs = a.project(&[0]);
        rhs.merge(&b.project(&[0]));
        prop_assert_eq!(lhs, rhs);
    }

    /// Applying a delta to a relation then diffing recovers the delta's
    /// effect (Relation::diff is the inverse of Relation::apply).
    #[test]
    fn relation_diff_recovers_apply(base in relation_rows(), extra in relation_rows()) {
        let old = Relation::from_tuples(
            r_schema(),
            base.iter().flat_map(|(t, c)| std::iter::repeat_n(t.clone(), *c as usize)),
        ).expect("well-typed");
        let delta = Delta::from_rows(r_schema(), extra.iter().cloned()).expect("well-typed");
        let mut new = old.clone();
        new.apply(&delta).expect("pure inserts always apply");
        let recovered = Relation::diff(&old, &new);
        prop_assert_eq!(recovered.rows(), delta.rows());
    }

    /// Query evaluation commutes with overlay binding: binding Δ in place of
    /// R equals evaluating with R replaced by Δ.
    #[test]
    fn overlay_equals_substitution(delta in signed_rows(2), s in relation_rows()) {
        let (delta, s) = (bag_of(&delta), bag_of(&s));
        // Path 1: LocalProvider with delta as R directly.
        let direct = eval_rs(delta.clone(), s.clone());
        // Path 2: bound table overlaying a base provider that has R and S.
        let mut base = LocalProvider::new();
        base.insert(r_schema(), SignedBag::new());
        base.insert(s_schema(), s);
        let bound = dyno::view::BoundTable {
            name: "R".into(),
            cols: vec!["k".into(), "a".into()],
            rows: delta,
        };
        let via_overlay = dyno::view::eval_with_bound(&base, &join_query(), &[bound])
            .expect("well-typed")
            .rows;
        prop_assert_eq!(direct, via_overlay);
    }
}
