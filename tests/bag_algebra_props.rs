//! Randomized tests for the bag algebra underlying incremental maintenance:
//! the identity `(R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S` and its supporting laws are
//! what make SWEEP compensation and Equation 6 correct.
#![cfg(feature = "proptest")]

use dyno::prelude::*;
use dyno::relational::SignedBag;
use dyno::sim::Rng;
use dyno::view::LocalProvider;

fn r_schema() -> Schema {
    Schema::of("R", &[("k", AttrType::Int), ("a", AttrType::Int)])
}

fn s_schema() -> Schema {
    Schema::of("S", &[("k", AttrType::Int), ("b", AttrType::Int)])
}

/// A small signed bag of (k, v) tuples with keys in a narrow range so joins
/// actually match; multiplicities span `-max_count..=max_count`.
fn signed_rows(rng: &mut Rng, max_count: i64) -> Vec<(Tuple, i64)> {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..6i64);
            let v = rng.gen_range(0..4i64);
            let c = rng.gen_range(-max_count..max_count + 1);
            (Tuple::of([k, v]), c)
        })
        .collect()
}

fn bag_of(rows: &[(Tuple, i64)]) -> SignedBag {
    rows.iter().cloned().collect()
}

/// Non-negative bag (a relation state).
fn relation_rows(rng: &mut Rng) -> Vec<(Tuple, i64)> {
    signed_rows(rng, 3).into_iter().map(|(t, c)| (t, c.abs())).collect()
}

fn join_query() -> SpjQuery {
    SpjQuery::over(["R", "S"])
        .select("R", "a")
        .select("S", "b")
        .join_eq(("R", "k"), ("S", "k"))
        .build()
}

fn eval_rs(r: SignedBag, s: SignedBag) -> SignedBag {
    let mut p = LocalProvider::new();
    p.insert(r_schema(), r);
    p.insert(s_schema(), s);
    dyno::relational::eval(&join_query(), &p).expect("well-typed join").rows
}

/// merge/diff are inverse; negation cancels.
#[test]
fn merge_diff_inverse() {
    let mut rng = Rng::new(0xBA6_0517);
    for case in 0..96 {
        let a = bag_of(&signed_rows(&mut rng, 4));
        let b = bag_of(&signed_rows(&mut rng, 4));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.diff(&b), a.clone(), "case {case}");
        let mut z = a.clone();
        z.merge(&a.negated());
        assert!(z.is_empty(), "case {case}");
    }
}

/// merge is commutative and associative.
#[test]
fn merge_commutative_associative() {
    let mut rng = Rng::new(0xBA6_1517);
    for case in 0..96 {
        let a = bag_of(&signed_rows(&mut rng, 4));
        let b = bag_of(&signed_rows(&mut rng, 4));
        let c = bag_of(&signed_rows(&mut rng, 4));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba, "case {case}");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "case {case}");
    }
}

/// The incremental-maintenance identity: (R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S.
#[test]
fn join_distributes_over_delta() {
    let mut rng = Rng::new(0xBA6_2517);
    for case in 0..96 {
        let r = bag_of(&relation_rows(&mut rng));
        let delta = bag_of(&signed_rows(&mut rng, 2));
        let s = bag_of(&relation_rows(&mut rng));
        let mut r_plus = r.clone();
        r_plus.merge(&delta);
        let full = eval_rs(r_plus, s.clone());
        let mut incremental = eval_rs(r, s.clone());
        incremental.merge(&eval_rs(delta, s));
        assert_eq!(full, incremental, "case {case}");
    }
}

/// Projection is linear: π(A + B) = π(A) + π(B).
#[test]
fn projection_linear() {
    let mut rng = Rng::new(0xBA6_3517);
    for case in 0..96 {
        let a = bag_of(&signed_rows(&mut rng, 3));
        let b = bag_of(&signed_rows(&mut rng, 3));
        let mut sum = a.clone();
        sum.merge(&b);
        let lhs = sum.project(&[0]);
        let mut rhs = a.project(&[0]);
        rhs.merge(&b.project(&[0]));
        assert_eq!(lhs, rhs, "case {case}");
    }
}

/// Applying a delta to a relation then diffing recovers the delta's effect
/// (Relation::diff is the inverse of Relation::apply).
#[test]
fn relation_diff_recovers_apply() {
    let mut rng = Rng::new(0xBA6_4517);
    for case in 0..96 {
        let base = relation_rows(&mut rng);
        let extra = relation_rows(&mut rng);
        let old = Relation::from_tuples(
            r_schema(),
            base.iter().flat_map(|(t, c)| std::iter::repeat_n(t.clone(), *c as usize)),
        )
        .expect("well-typed");
        let delta = Delta::from_rows(r_schema(), extra.iter().cloned()).expect("well-typed");
        let mut new = old.clone();
        new.apply(&delta).expect("pure inserts always apply");
        let recovered = Relation::diff(&old, &new);
        assert_eq!(recovered.rows(), delta.rows(), "case {case}");
    }
}

/// Query evaluation commutes with overlay binding: binding Δ in place of R
/// equals evaluating with R replaced by Δ.
#[test]
fn overlay_equals_substitution() {
    let mut rng = Rng::new(0xBA6_5517);
    for case in 0..96 {
        let delta = bag_of(&signed_rows(&mut rng, 2));
        let s = bag_of(&relation_rows(&mut rng));
        // Path 1: LocalProvider with delta as R directly.
        let direct = eval_rs(delta.clone(), s.clone());
        // Path 2: bound table overlaying a base provider that has R and S.
        let mut base = LocalProvider::new();
        base.insert(r_schema(), SignedBag::new());
        base.insert(s_schema(), s);
        let bound = dyno::view::BoundTable {
            name: "R".into(),
            cols: vec!["k".into(), "a".into()],
            rows: delta,
        };
        let via_overlay =
            dyno::view::eval_with_bound(&base, &join_query(), &[bound]).expect("well-typed").rows;
        assert_eq!(direct, via_overlay, "case {case}");
    }
}
