//! The replicated-warehouse convergence suite: N peer warehouses over the
//! shared testbed, exchanging committed per-key post-images through the
//! partition-capable `PeerNet` fabric (`dyno::sim::run_replicated`).
//!
//! Invariants every healthy run must satisfy:
//!
//! * **bit identity** — after the final heal and flush, every replica's
//!   per-view extent CRCs are identical;
//! * **source-deep convergence** — each replica's extent equals its view
//!   evaluated over its *own* written-back source tables;
//! * **conflict detection** — partition runs must detect concurrent writes
//!   (the `rd` dependency class) and discard LWW losers as superseded;
//! * **crash tolerance** — a replica killed between its durable `Published`
//!   record and the send recovers and re-sends identical bytes;
//! * **determinism** — the same seed reproduces the run bit-for-bit,
//!   lineage capture included.
//!
//! The quick subset always runs; the full grid (replica counts × profiles ×
//! seeds × kill/no-kill) is `#[ignore]`d and exercised by
//! `scripts/verify.sh` under `VERIFY_FULL=1` via `--include-ignored`. When
//! `DYNO_REPLICA_SUMMARY` names a file, each run appends its partition,
//! conflict, and superseded counters plus the bit-identity verdict so the
//! harness can assert the suite actually partitioned, conflicted, and
//! converged.

use dyno::sim::{run_replicated, ReplicaConfig, ReplicaReport};

/// Runs one configuration, enforces the invariants, appends the summary.
fn assert_healthy(cfg: &ReplicaConfig, profile: &str) -> ReplicaReport {
    let report = run_replicated(cfg);
    let ctx = format!(
        "profile={profile} replicas={} seed={} kill={:?}",
        cfg.replicas, cfg.seed, cfg.kill_round
    );
    assert!(report.last_error.is_none(), "{ctx}: hard error {:?}", report.last_error);
    assert!(report.bit_identical, "{ctx}: replica extents diverged: {:?}", report.extent_crcs);
    assert!(report.source_consistent, "{ctx}: an extent disagrees with its own sources");
    assert!(report.converged, "{ctx}: run must converge");
    if profile == "partition" {
        assert!(report.partitions_injected > 0, "{ctx}: windows must hold traffic");
        assert!(report.conflicts > 0, "{ctx}: concurrent writes must be detected");
        assert!(report.superseded > 0, "{ctx}: LWW losers must be discarded");
    }
    write_summary(&report);
    report
}

/// Appends `replica.*` key=value lines to `$DYNO_REPLICA_SUMMARY` when set
/// (the verify.sh hook).
fn write_summary(report: &ReplicaReport) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("DYNO_REPLICA_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "replica.partitions_injected={}", report.partitions_injected);
            let _ = writeln!(f, "replica.conflicts={}", report.conflicts);
            let _ = writeln!(f, "replica.superseded={}", report.superseded);
            let _ = writeln!(f, "replica.remote_applied={}", report.remote_applied);
            let _ = writeln!(f, "replica.bit_identical={}", u64::from(report.bit_identical));
            let _ = writeln!(f, "replica.kills={}", report.kills);
        }
    }
}

#[test]
fn replica_smoke_partition_trio_conflicts_and_converges() {
    // The headline scenario: three replicas, two partition/heal windows
    // with concurrent same-key writes scheduled inside them. The heal must
    // drain to bit-identical extents with nonzero detected conflicts.
    let report = assert_healthy(&ReplicaConfig::named("partition", 3, 42), "partition");
    assert!(report.published > 0);
    assert!(report.remote_applied > 0);
}

#[test]
fn replica_smoke_each_profile_converges() {
    for profile in ["quiet", "drop_dup", "partition"] {
        assert_healthy(&ReplicaConfig::named(profile, 2, 1), profile);
    }
}

#[test]
fn replica_smoke_crash_before_send_recovers() {
    let report = assert_healthy(&ReplicaConfig::named("quiet", 3, 3).with_kill(5), "quiet");
    assert_eq!(report.kills, 1, "the armed kill fired");
}

#[test]
fn replica_same_seed_is_bit_reproducible() {
    let run = || run_replicated(&ReplicaConfig::named("partition", 3, 23).with_lineage());
    let (a, b) = (run(), run());
    assert_eq!(a.extent_crcs, b.extent_crcs, "extents reproduce bit-for-bit");
    assert_eq!(a.conflicts, b.conflicts);
    assert_eq!(a.superseded, b.superseded);
    assert_eq!(a.lineage, b.lineage, "lineage capture reproduces bit-for-bit");
}

/// The full partition/heal chaos grid: replica counts × profiles × 8 seeds,
/// each both uncrashed and with a mid-run kill. `#[ignore]`d (minutes);
/// run via `scripts/verify.sh` under `VERIFY_FULL=1` or
/// `cargo test --release --test replica_props -- --include-ignored`.
#[test]
#[ignore = "full grid; run with --include-ignored (VERIFY_FULL=1 scripts/verify.sh)"]
fn replica_full_grid_converges_under_partitions_and_kills() {
    let mut partitions = 0u64;
    let mut conflicts = 0u64;
    let mut superseded = 0u64;
    let mut kills = 0u64;
    for replicas in [2usize, 3, 5] {
        for profile in ["quiet", "drop_dup", "partition"] {
            for seed in 0..8u64 {
                let base = ReplicaConfig::named(profile, replicas, seed);
                let clean = assert_healthy(&base, profile);
                let crashed =
                    assert_healthy(&base.clone().with_kill(4 + (seed as usize % 3)), profile);
                assert!(crashed.kills >= 1, "{profile} r{replicas} seed={seed}: kill fired");
                partitions += clean.partitions_injected + crashed.partitions_injected;
                conflicts += clean.conflicts + crashed.conflicts;
                superseded += clean.superseded + crashed.superseded;
                kills += crashed.kills;
            }
        }
    }
    assert!(partitions > 0, "the grid must partition");
    assert!(conflicts > 0, "the grid must detect concurrent writes");
    assert!(superseded > 0, "the grid must discard LWW losers");
    assert!(kills >= 72, "every crashed run must kill (got {kills})");
}
