//! Provenance conservation: the lineage captured by `dyno::obs` must agree
//! with what the maintenance machinery actually did, under transport faults
//! and across warehouse crashes.
//!
//! Invariants, checked over the full lineage capture of each run:
//!
//! * **conservation** — every member of every committed extent delta
//!   (`stage::EXTENT` batch record) traces back to at least one `admit`
//!   record: nothing reaches the view without passing the UMQ gate;
//! * **no orphan terminals** — every `applied` id was admitted, and every
//!   `applied` id appears in exactly one extent batch;
//! * **exactly-once terminals** — no id carries two `applied` records, even
//!   when the warehouse is killed mid-commit and recovery re-executes the
//!   batch (a durable Applied record must *not* be re-recorded; a dropped
//!   one must be recorded exactly once, post-recovery);
//! * **no silent eviction** — these runs must fit the lineage ring, else
//!   the conservation checks above would be vacuous;
//! * **bit identity** — the same seed re-run yields a byte-identical
//!   `lineage_jsonl()` capture: provenance is as deterministic as the run.
//!
//! The quick subset always runs; the full grids are `#[ignore]`d and
//! exercised by `scripts/verify.sh` via `--include-ignored`.

use std::collections::HashMap;

use dyno::fault::FaultProfile;
use dyno::obs::{stage, Collector, FieldValue, BATCH_BIT};
use dyno::sim::{
    run_chaos, run_crash_chaos, run_replicated, ChaosConfig, CrashConfig, ReplicaConfig,
};
use dyno::view::wal::{CrashPlan, CrashPoint};

const CLASSES: [CrashPoint; 3] =
    [CrashPoint::BetweenSteps, CrashPoint::AfterIntent, CrashPoint::MidBatch];

/// Per-id tallies extracted from one run's lineage capture.
struct Tally {
    admits: HashMap<u64, u64>,
    applieds: HashMap<u64, u64>,
    /// id → number of extent batches naming it as a member.
    extent_memberships: HashMap<u64, u64>,
    extent_batches: u64,
}

fn tally(obs: &Collector) -> Tally {
    let mut t = Tally {
        admits: HashMap::new(),
        applieds: HashMap::new(),
        extent_memberships: HashMap::new(),
        extent_batches: 0,
    };
    for r in obs.lineage_records() {
        if r.id & BATCH_BIT != 0 {
            if r.stage == stage::EXTENT {
                t.extent_batches += 1;
                for (k, v) in &r.fields {
                    if *k == "member" {
                        if let FieldValue::U64(m) = v {
                            *t.extent_memberships.entry(*m).or_insert(0) += 1;
                        }
                    }
                }
            }
            continue;
        }
        match r.stage {
            s if s == stage::ADMIT => *t.admits.entry(r.id).or_insert(0) += 1,
            s if s == stage::APPLIED => *t.applieds.entry(r.id).or_insert(0) += 1,
            _ => {}
        }
    }
    t
}

/// The conservation + exactly-once invariants over one run's capture.
fn assert_conserved(obs: &Collector, ctx: &str) {
    assert_eq!(
        obs.lineage_dropped(),
        0,
        "{ctx}: the run must fit the lineage ring (conservation would be vacuous)"
    );
    let t = tally(obs);
    assert!(t.extent_batches > 0, "{ctx}: a converged run commits at least one extent delta");
    assert!(!t.applieds.is_empty(), "{ctx}: a converged run applies at least one update");

    for (id, n) in &t.extent_memberships {
        assert!(
            t.admits.contains_key(id),
            "{ctx}: extent member u{id} has no admit record (untraceable delta)"
        );
        assert_eq!(*n, 1, "{ctx}: u{id} named in {n} extent batches (must be exactly one)");
        assert!(t.applieds.contains_key(id), "{ctx}: extent member u{id} has no applied record");
    }
    for (id, n) in &t.applieds {
        assert_eq!(*n, 1, "{ctx}: u{id} has {n} applied records (terminals are exactly-once)");
        assert!(t.admits.contains_key(id), "{ctx}: applied u{id} was never admitted (orphan)");
        assert!(
            t.extent_memberships.contains_key(id),
            "{ctx}: applied u{id} is in no extent batch"
        );
    }
}

#[test]
fn chaos_lineage_conserves_every_extent_delta() {
    for profile in FaultProfile::all() {
        let cfg = ChaosConfig::new(profile, 7).with_lineage();
        let report = run_chaos(&cfg);
        let ctx = format!("profile={} seed=7", cfg.profile.name);
        assert!(report.last_error.is_none(), "{ctx}: hard error {:?}", report.last_error);
        assert!(report.converged, "{ctx}: run must converge");
        assert_conserved(&report.obs, &ctx);
    }
}

#[test]
fn crash_lineage_terminals_survive_every_kill_class() {
    // A kill at each point of the commit protocol: terminals must come out
    // exactly-once whether the Applied record was durable (the cut tripped
    // on that very append — recovery does not re-execute) or dropped (the
    // cut came earlier — recovery re-executes and records them then).
    for point in CLASSES {
        let cfg = CrashConfig::new(FaultProfile::quiet(), 7)
            .with_lineage()
            .with_kills(vec![CrashPlan { point, skip: 1 }]);
        let report = run_crash_chaos(&cfg);
        let ctx = format!("kill={point:?} seed=7");
        assert_eq!(report.kills, 1, "{ctx}: the kill must fire");
        assert!(report.converged, "{ctx}: recovered run converges");
        assert_conserved(&report.obs, &ctx);
    }
}

#[test]
fn lineage_is_bit_identical_across_same_seed_reruns() {
    let cfg = ChaosConfig::new(FaultProfile::drop_dup(), 4).with_lineage();
    let a = run_chaos(&cfg).obs.lineage_jsonl();
    let b = run_chaos(&cfg).obs.lineage_jsonl();
    assert!(!a.is_empty(), "capture must not be empty");
    assert_eq!(a, b, "same seed, same faults, byte-identical lineage");
}

/// Counts ids per stage in one replica's lineage JSONL capture (replica
/// runs export per-replica JSONL strings rather than sharing a collector).
fn stage_ids(jsonl: &str, stage: &str) -> HashMap<u64, u64> {
    let needle = format!("\"stage\":\"{stage}\"");
    let mut out = HashMap::new();
    for line in jsonl.lines().filter(|l| l.contains(&needle)) {
        let id = line
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse::<u64>().ok())
            .expect("every lineage line carries an id");
        *out.entry(id).or_insert(0) += 1;
    }
    out
}

/// Replica-message conservation: at every receiving replica, each resolved
/// peer message reaches **exactly one** terminal — `repl.apply` when it won
/// (or was causally ordered), `superseded` when a causally later or
/// LWW-winning write already holds the register — never both, never twice,
/// and never without a `repl.recv` record. Holds across partitions,
/// concurrent-write conflicts, and a mid-run kill/recovery.
#[test]
fn replica_lineage_terminates_each_message_exactly_once() {
    let cfg = ReplicaConfig::named("partition", 3, 9).with_kill(6).with_lineage();
    let report = run_replicated(&cfg);
    assert!(report.converged, "run must converge: {:?}", report.last_error);
    assert!(report.superseded > 0, "partition conflicts must supersede at least once");
    assert_eq!(report.kills, 1, "the armed kill fired");
    for (r, jsonl) in report.lineage.iter().enumerate() {
        let recv = stage_ids(jsonl, stage::REPL_RECV);
        let apply = stage_ids(jsonl, stage::REPL_APPLY);
        let superseded = stage_ids(jsonl, stage::SUPERSEDED);
        assert!(!recv.is_empty(), "replica {r}: resolved at least one peer message");
        for (id, n) in &recv {
            assert_eq!(*n, 1, "replica {r}: message {id:#x} resolved {n} times");
            let a = apply.get(id).copied().unwrap_or(0);
            let s = superseded.get(id).copied().unwrap_or(0);
            assert_eq!(
                a + s,
                1,
                "replica {r}: message {id:#x} has apply={a} superseded={s} terminals"
            );
        }
        for id in apply.keys().chain(superseded.keys()) {
            assert!(
                recv.contains_key(id),
                "replica {r}: terminal for {id:#x} without a repl.recv record"
            );
        }
    }
}

/// The full chaos grid with lineage on: every profile × 6 seeds, each run
/// conserved. Run via `scripts/verify.sh` or `cargo test --release --test
/// provenance_props -- --include-ignored`.
#[test]
#[ignore = "full grid; run with --include-ignored (scripts/verify.sh)"]
fn chaos_full_grid_conserves_lineage() {
    for profile in FaultProfile::all() {
        for seed in 0..6u64 {
            let cfg = ChaosConfig::new(profile, seed).with_lineage();
            let report = run_chaos(&cfg);
            let ctx = format!("profile={} seed={seed}", cfg.profile.name);
            assert!(report.converged, "{ctx}: run must converge");
            assert_conserved(&report.obs, &ctx);
        }
    }
}

/// The full crash grid with lineage on: every kill class × 6 seeds × skip
/// variants, terminals exactly-once across every recovery, and the crashed
/// capture bit-identical on rerun.
#[test]
#[ignore = "full grid; run with --include-ignored (VERIFY_FULL=1 scripts/verify.sh)"]
fn crash_full_grid_conserves_lineage() {
    let mut kills = 0u64;
    for point in CLASSES {
        for seed in 0..6u64 {
            let cfg = CrashConfig::new(FaultProfile::quiet(), seed)
                .with_lineage()
                .with_kills(vec![CrashPlan { point, skip: seed % 3 }]);
            let report = run_crash_chaos(&cfg);
            let ctx = format!("kill={point:?} seed={seed}");
            assert!(report.converged, "{ctx}: recovered run converges");
            assert_conserved(&report.obs, &ctx);
            kills += report.kills;

            let again = run_crash_chaos(&cfg);
            assert_eq!(
                report.obs.lineage_jsonl(),
                again.obs.lineage_jsonl(),
                "{ctx}: crashed capture bit-identical on rerun"
            );
        }
    }
    assert!(kills >= 12, "the grid must actually kill processes (got {kills})");
}
