#!/usr/bin/env bash
# Regenerates the checked-in performance baseline `BENCH_pr7.json`:
#
#  - the maintenance micro-benchmarks, including the per-DU index size
#    sweep (`sweep_du_indexed/N` — flat from 100 k to 10 M rows — vs
#    `sweep_du_scan/N`, linear and capped at 400 k), and the
#    `join_replay/N` vs `delta_join_probe/N` pair isolating the per-step
#    executor machinery the Z-set operators eliminate, exported as JSON
#    lines via DYNO_BENCH_JSON;
#  - the fig08 and fig10 simulated-seconds series (`--json`), which must
#    be byte-identical with the plan cache on or off — the executor's
#    access path never feeds the simulated cost model.
#
# Knobs (env): DYNO_BENCH_MS per-bench budget, DYNO_SWEEP_TUPLES sweep
# sizes, DYNO_TUPLES testbed scale for the figure runs. The default sweep
# reaches 10 M rows per relation (six relations); budget ~30 GB of RAM
# and several minutes of testbed setup for the top size.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

: "${DYNO_BENCH_MS:=200}"
: "${DYNO_SWEEP_TUPLES:=100000,1000000,10000000}"
: "${DYNO_TUPLES:=2000}"

echo "== maintenance micro-benchmarks (sweep sizes: $DYNO_SWEEP_TUPLES) =="
# One process per sweep size: heap state left behind by a smaller
# testbed (allocator fragmentation, page-fault warm-in) measurably
# inflates the next size's medians when the sizes share a process, so
# each size gets a fresh heap and appends to the same JSONL capture.
# The fixed-size groups ride with the first size only (DYNO_SWEEP_ONLY).
first=1
IFS=',' read -ra sweep_sizes <<< "$DYNO_SWEEP_TUPLES"
for size in "${sweep_sizes[@]}"; do
    extra_env=()
    if [ "$first" = 1 ]; then first=0; else extra_env=(DYNO_SWEEP_ONLY=1); fi
    env "${extra_env[@]}" \
        DYNO_BENCH_MS="$DYNO_BENCH_MS" DYNO_SWEEP_TUPLES="$size" \
        DYNO_BENCH_JSON="$out/bench.jsonl" \
        cargo bench -q --offline -p dyno-bench --bench maintenance
done

echo "== fig08 / fig10 simulated-seconds series (DYNO_TUPLES=$DYNO_TUPLES) =="
DYNO_TUPLES="$DYNO_TUPLES" cargo run -q --release --offline -p dyno-bench \
    --bin fig08 -- --json "$out/fig08.json" >/dev/null
DYNO_TUPLES="$DYNO_TUPLES" cargo run -q --release --offline -p dyno-bench \
    --bin fig10 -- --json "$out/fig10.json" >/dev/null

{
    printf '{"baseline":"pr7",\n"bench":[\n'
    sed '$!s/$/,/' "$out/bench.jsonl"
    printf '],\n"fig08":'
    cat "$out/fig08.json"
    printf ',"fig10":'
    cat "$out/fig10.json"
    printf '}\n'
} > BENCH_pr7.json

echo "wrote BENCH_pr7.json"

echo "== saturation sweep (PR 10 baseline) =="
# The capacity knee curve: every field is virtual-clock deterministic, so
# this capture is byte-identical across machines for the default seed and
# verify.sh can hold reruns to it with a loose structural tolerance.
cargo run -q --release --offline -p dyno-bench --bin saturate -- \
    --json BENCH_pr10.json >/dev/null

echo "wrote BENCH_pr10.json"
