#!/usr/bin/env bash
# Regenerates the checked-in performance baseline `BENCH_pr2.json`:
#
#  - the maintenance micro-benchmarks, including the per-DU index size
#    sweep (`sweep_du_indexed/N` vs `sweep_du_scan/N` — flat vs linear),
#    exported as JSON lines via DYNO_BENCH_JSON;
#  - the fig08 and fig10 simulated-seconds series (`--json`), which must
#    be byte-identical with the plan cache on or off — the executor's
#    access path never feeds the simulated cost model.
#
# Knobs (env): DYNO_BENCH_MS per-bench budget, DYNO_SWEEP_TUPLES sweep
# sizes, DYNO_TUPLES testbed scale for the figure runs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

: "${DYNO_BENCH_MS:=200}"
: "${DYNO_SWEEP_TUPLES:=100000,200000,400000}"
: "${DYNO_TUPLES:=2000}"

echo "== maintenance micro-benchmarks (sweep sizes: $DYNO_SWEEP_TUPLES) =="
DYNO_BENCH_MS="$DYNO_BENCH_MS" DYNO_SWEEP_TUPLES="$DYNO_SWEEP_TUPLES" \
DYNO_BENCH_JSON="$out/bench.jsonl" \
    cargo bench -q --offline -p dyno-bench --bench maintenance

echo "== fig08 / fig10 simulated-seconds series (DYNO_TUPLES=$DYNO_TUPLES) =="
DYNO_TUPLES="$DYNO_TUPLES" cargo run -q --release --offline -p dyno-bench \
    --bin fig08 -- --json "$out/fig08.json" >/dev/null
DYNO_TUPLES="$DYNO_TUPLES" cargo run -q --release --offline -p dyno-bench \
    --bin fig10 -- --json "$out/fig10.json" >/dev/null

{
    printf '{"baseline":"pr2",\n"bench":[\n'
    sed '$!s/$/,/' "$out/bench.jsonl"
    printf '],\n"fig08":'
    cat "$out/fig08.json"
    printf ',"fig10":'
    cat "$out/fig10.json"
    printf '}\n'
} > BENCH_pr2.json

echo "wrote BENCH_pr2.json"
