#!/usr/bin/env bash
# Regenerates `BENCH_smoke.json`, the checked-in baseline for the
# `benchdiff` regression gate in scripts/verify.sh.
#
# The capture is the same bounded bench smoke verify.sh runs
# (DYNO_BENCH_MS=50, DYNO_SWEEP_TUPLES=400,800 — every micro-benchmark
# group, tiny sizes), reduced to median-only JSONL: medians are the one
# statistic stable enough to gate on; samples/block/min/max vary with
# machine speed and would make the diff meaningless.
#
# Regenerate on the machine that runs verification whenever benchmarks are
# added, renamed, or intentionally re-costed.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

DYNO_BENCH_MS=50 DYNO_SWEEP_TUPLES=400,800 DYNO_BENCH_JSON="$out/smoke.jsonl" \
    cargo bench -q --offline -p dyno-bench >/dev/null

sed -E 's/"samples":[0-9]+,"block":[0-9]+,"min_ns":[0-9.]+,//; s/,"mean_ns":[0-9.]+,"max_ns":[0-9.]+//' \
    "$out/smoke.jsonl" > BENCH_smoke.json

echo "wrote BENCH_smoke.json ($(wc -l < BENCH_smoke.json) benches)"
