#!/usr/bin/env bash
# Full offline verification gauntlet: formatting, lints, build, tests
# (default and feature-gated randomized suites), and the figure binaries'
# JSON/trace export smoke test. No network access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test (default features) =="
cargo test -q --workspace --offline

echo "== cargo test --features proptest (randomized suites) =="
cargo test -q --workspace --offline --features proptest

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "== bench harness smoke test (bounded budget) =="
DYNO_BENCH_MS=50 DYNO_SWEEP_TUPLES=400,800 DYNO_BENCH_JSON="$out/smoke.jsonl" \
    cargo bench -q --offline -p dyno-bench >/dev/null

echo "== benchdiff regression gate (smoke medians vs BENCH_smoke.json) =="
# The smoke capture, reduced to median-only lines (the reduction in
# scripts/bench_smoke_baseline.sh), must stay within 4x of the checked-in
# baseline on every benchmark. The tolerance is deliberately loose — it
# absorbs machine-to-machine variance and the smoke's tiny budget — while
# still catching structural regressions: losing an index path, a delta
# operator falling back to replay, or an accidentally quadratic loop all
# move medians by well over 4x. Exit 1 on regression.
sed -E 's/"samples":[0-9]+,"block":[0-9]+,"min_ns":[0-9.]+,//; s/,"mean_ns":[0-9.]+,"max_ns":[0-9.]+//' \
    "$out/smoke.jsonl" > "$out/smoke_medians.jsonl"
cargo run -q --release --offline -p dyno-bench --bin benchdiff -- \
    BENCH_smoke.json "$out/smoke_medians.jsonl" --tol 4.0

echo "== fig10 --json/--trace smoke test =="
DYNO_TUPLES=300 cargo run -q --release --offline -p dyno-bench --bin fig10 -- \
    --json "$out/fig10.json" --trace "$out/fig10.jsonl" >/dev/null
test -s "$out/fig10.json"
test -s "$out/fig10.jsonl"
test -s "$out/fig10.jsonl.metrics.json"

echo "== chrome trace export + tracecheck (Perfetto document validity) =="
# A lineage-traced chaos run exported as a Chrome trace_event document,
# then structurally validated: every B/E span balanced per lane, every
# flow arrow (s/t/f per causal id) resolved, no unknown phases.
DYNO_TUPLES=300 cargo run -q --release --offline -p dyno-bench --bin fig10 -- \
    --chrome "$out/fig10.chrome.json" >/dev/null
test -s "$out/fig10.chrome.json"
cargo run -q --release --offline -p dyno-bench --bin tracecheck -- \
    "$out/fig10.chrome.json"

echo "== forensics analyzer smoke (per-anomaly-class latency breakdown) =="
cargo run -q --release --offline -p dyno-bench --bin forensics -- \
    --json "$out/forensics.json" >/dev/null
test -s "$out/forensics.json"
grep -q '"by_class_us"' "$out/forensics.json"

echo "== plan cache invalidates on every committed schema change =="
# The traced fig10 run commits a train of 10 SCs; each must have cleared
# the maintenance-plan cache.
invalidations="$(grep -o '"plan.cache_invalidations":[0-9]*' \
    "$out/fig10.jsonl.metrics.json" | grep -o '[0-9]*$')"
test -n "$invalidations"
test "$invalidations" -ge 10
echo "plan.cache_invalidations = $invalidations (>= 10)"

# The #[ignore]d full grids (chaos: seeds x profiles x strategies x
# policies; crash: classes x seeds x policies) run when VERIFY_FULL=1;
# otherwise only the always-on quick subsets run, and the skip is announced
# rather than silent.
VERIFY_FULL="${VERIFY_FULL:-0}"
grid_flags=()
if [ "$VERIFY_FULL" = "1" ]; then
    grid_flags=(--include-ignored)
    echo "== VERIFY_FULL=1: full seeded grids enabled =="
else
    echo "== VERIFY_FULL not set: quick chaos/crash subsets only" \
         "(set VERIFY_FULL=1 for the full grids) =="
fi

echo "== chaos smoke (seeded fault-injection grid, wall-clock capped) =="
# Runs in release so the cap is comfortable; `timeout` guards against a hung
# recovery loop ever blocking verification. Each run appends its
# injected-fault count to the summary file — a suite that injected nothing
# proves nothing, so that is an error.
chaos_summary="$out/chaos_summary.txt"
: > "$chaos_summary"
DYNO_CHAOS_SUMMARY="$chaos_summary" timeout 600 \
    cargo test -q --release --offline --test chaos_props -- "${grid_flags[@]}"
test -s "$chaos_summary"
injected_total="$(awk -F= '/^fault.injected_total=/ { n += $2 } END { print n+0 }' \
    "$chaos_summary")"
test "$injected_total" -gt 0
echo "fault.injected_total = $injected_total (summed over $(wc -l < "$chaos_summary") runs)"

echo "== live monitor smoke (open-loop telemetry, DESIGN.md §14) =="
# A short bursty run against a bounded UMQ: the admission bound must
# actually shed, the load must still mostly flow, and the burn-rate SLO
# machinery must complete at least one evaluation window per lane.
cargo run -q --release --offline -p dyno-bench --bin monitor -- \
    --profile burst --seed 42 --duration-s 30 --json "$out/monitor.json" >/dev/null
test -s "$out/monitor.json"
shed="$(grep -o '"shed":[0-9]*' "$out/monitor.json" | head -1 | grep -o '[0-9]*$')"
admitted="$(grep -o '"admitted":[0-9]*' "$out/monitor.json" | head -1 | grep -o '[0-9]*$')"
evals="$(grep -o '"evaluations":[0-9]*' "$out/monitor.json" | grep -o '[0-9]*$' \
    | awk '{ n += $1 } END { print n+0 }')"
test "$shed" -gt 0
test "$admitted" -gt 0
test "$evals" -gt 0
echo "monitor: admitted=$admitted shed=$shed slo_evaluations=$evals"

echo "== saturation sweep (capacity knee curve, DESIGN.md §18) =="
# Steps the open-loop arrival rate across the default grid with the
# per-operator profiler on. The bin itself asserts the offered-load ramp is
# monotone; here we require a detected knee and hold the deterministic
# capture (admitted/shed, staleness quantiles, profile row/probe totals —
# no wall-ns) within 4x of the checked-in BENCH_pr10.json baseline. The
# fields are virtual-clock driven, so in practice the rerun is
# byte-identical; the loose tolerance only absorbs intentional retunes.
cargo run -q --release --offline -p dyno-bench --bin saturate -- \
    --json "$out/saturate.jsonl" > "$out/saturate.txt"
grep -q '"bench":"knee"' "$out/saturate.jsonl"
grep -q '^knee: ' "$out/saturate.txt"
cargo run -q --release --offline -p dyno-bench --bin benchdiff -- \
    BENCH_pr10.json "$out/saturate.jsonl" --tol 4.0

echo "== profiler gates (conservation, bit-identity, disabled = 0 alloc) =="
# tests/profile_props.rs: per-phase totals are sums of operator nodes on a
# real capture, monitor/chaos determinism surfaces are byte-identical with
# the profiler on and off, and the disabled gate path performs zero heap
# allocations (counting global allocator). Release mode so the zero-alloc
# loop measures the real codegen, not debug-build temporaries.
timeout 600 cargo test -q --release --offline --features proptest \
    --test profile_props

echo "== multi-view smoke (shared maintenance DAG, per-view safety) =="
# The differential multi-view suite (tests/multiview_props.rs): N
# incrementally maintained views audited per view at every commit. The
# summary must show the suite exercised >= 3 overlapping views, actually
# served first-hop joins from the shared-subplan cache, and recorded at
# least one batch whose safety verdicts split across views (safe for A,
# unsafe/deferred for B) — a run that never shares and never diverges is
# not testing the multi-view machinery.
multiview_summary="$out/multiview_summary.txt"
: > "$multiview_summary"
DYNO_MULTIVIEW_SUMMARY="$multiview_summary" timeout 600 \
    cargo test -q --release --offline --test multiview_props -- "${grid_flags[@]}"
test -s "$multiview_summary"
max_views="$(awk -F= '/^views=/ { if ($2 > n) n = $2 } END { print n+0 }' "$multiview_summary")"
shared_hits="$(awk -F= '/^subplan.shared_hits=/ { n += $2 } END { print n+0 }' \
    "$multiview_summary")"
divergent="$(awk -F= '/^safety.divergent_verdicts=/ { n += $2 } END { print n+0 }' \
    "$multiview_summary")"
test "$max_views" -ge 3
test "$shared_hits" -gt 0
test "$divergent" -gt 0
echo "multiview: views=$max_views subplan.shared_hits=$shared_hits" \
     "safety.divergent_verdicts=$divergent (over $(wc -l < "$multiview_summary") lines)"

echo "== multiview bench sweep (shared vs independent warehouses) =="
# Shared-subplan maintenance must beat N independent single-view warehouses
# by >= 1.5x at 3 overlapping views (the in-bin gate), and the whole sweep
# must stay within 4x of the checked-in BENCH_pr8.json baseline — the same
# loose-but-structural tolerance as the smoke gate above. The speedup
# ratios (speedup_x1000_*) are scale-free, so the benchdiff comparison
# also catches a sharing regression that a fast machine would mask.
cargo run -q --release --offline -p dyno-bench --bin multiview -- \
    --check-ratio 1.5 --json "$out/multiview.jsonl"
cargo run -q --release --offline -p dyno-bench --bin benchdiff -- \
    BENCH_pr8.json "$out/multiview.jsonl" --tol 4.0

echo "== benchdiff self-check (a capture never regresses against itself) =="
cargo run -q --release --offline -p dyno-bench --bin benchdiff -- \
    BENCH_scale.json BENCH_scale.json --tol 0

echo "== provenance conservation (lineage vs. what maintenance did) =="
# Every committed extent delta must trace to an admitted update, terminals
# are exactly-once even across kill-restart, and same-seed captures are
# byte-identical (tests/provenance_props.rs).
timeout 600 cargo test -q --release --offline --test provenance_props -- \
    "${grid_flags[@]}"

echo "== crash-recovery smoke (seeded kill-restart, wall-clock capped) =="
# Warehouse processes are killed at deterministic commit-protocol points and
# recovered from the WAL (tests/crash_props.rs). The suite must actually
# kill something, every recovery must converge bit-identically, and a
# cleanly closed log must recover with recover.torn_records == 0 on every
# run — the simulated power cut drops whole records, so any torn tail here
# is a WAL framing bug.
crash_summary="$out/crash_summary.txt"
: > "$crash_summary"
DYNO_CRASH_SUMMARY="$crash_summary" timeout 600 \
    cargo test -q --release --offline --test crash_props -- "${grid_flags[@]}"
test -s "$crash_summary"
kills_total="$(awk -F'[= ]' '/^wal.kills=/ { n += $2 } END { print n+0 }' "$crash_summary")"
test "$kills_total" -gt 0
torn_total="$(awk -F= '/recover.torn_records=/ { n += $NF } END { print n+0 }' "$crash_summary")"
test "$torn_total" -eq 0
echo "wal.kills = $kills_total, recover.torn_records = $torn_total" \
     "(over $(wc -l < "$crash_summary") runs)"

echo "== replication smoke (partitioned peer replicas, causal conflicts) =="
# The replicated-warehouse suite (tests/replica_props.rs): N peer replicas
# exchanging committed post-images across a partition-capable fabric. The
# summary must show the suite actually held traffic in partition windows,
# detected concurrent writes (rd conflicts) and discarded LWW losers, and
# that *every* run converged to bit-identical extents — a suite that never
# partitions proves nothing about partition tolerance.
replica_summary="$out/replica_summary.txt"
: > "$replica_summary"
DYNO_REPLICA_SUMMARY="$replica_summary" timeout 600 \
    cargo test -q --release --offline --test replica_props -- "${grid_flags[@]}"
test -s "$replica_summary"
partitions="$(awk -F= '/^replica.partitions_injected=/ { n += $2 } END { print n+0 }' \
    "$replica_summary")"
superseded="$(awk -F= '/^replica.superseded=/ { n += $2 } END { print n+0 }' \
    "$replica_summary")"
runs="$(awk -F= '/^replica.bit_identical=/ { n += 1 } END { print n+0 }' "$replica_summary")"
identical="$(awk -F= '/^replica.bit_identical=/ { n += $2 } END { print n+0 }' \
    "$replica_summary")"
test "$partitions" -gt 0
test "$superseded" -gt 0
test "$runs" -gt 0
test "$identical" -eq "$runs"
echo "replica: partitions_injected=$partitions superseded=$superseded" \
     "bit_identical=$identical/$runs runs"

echo "== replication bench sweep (replica count x profile, counter drift) =="
# Convergence wall-clock medians plus the deterministic per-seed conflict
# and superseded counters; benchdiff holds both within 4x of the checked-in
# BENCH_pr9.json baseline. The counter rows are scale-free, so a resolver
# change (missed conflicts, double supersede) trips the gate even on a
# machine where timings would mask it.
cargo run -q --release --offline -p dyno-bench --bin replicate -- \
    --json "$out/replicate.jsonl"
cargo run -q --release --offline -p dyno-bench --bin benchdiff -- \
    BENCH_pr9.json "$out/replicate.jsonl" --tol 4.0

echo "== replication forensics lens smoke =="
# Capture to a file rather than piping into `grep -q`: an early-exiting
# grep closes the pipe and the bin dies on EPIPE mid-print.
cargo run -q --release --offline -p dyno-bench --bin forensics -- --replica \
    > "$out/forensics_replica.txt"
grep -q "extents bit-identical: true" "$out/forensics_replica.txt"

echo "verify: all green"
