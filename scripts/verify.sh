#!/usr/bin/env bash
# Full offline verification gauntlet: formatting, lints, build, tests
# (default and feature-gated randomized suites), and the figure binaries'
# JSON/trace export smoke test. No network access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test (default features) =="
cargo test -q --workspace --offline

echo "== cargo test --features proptest (randomized suites) =="
cargo test -q --workspace --offline --features proptest

echo "== fig10 --json/--trace smoke test =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
DYNO_TUPLES=300 cargo run -q --release --offline -p dyno-bench --bin fig10 -- \
    --json "$out/fig10.json" --trace "$out/fig10.jsonl" >/dev/null
test -s "$out/fig10.json"
test -s "$out/fig10.jsonl"
test -s "$out/fig10.jsonl.metrics.json"

echo "verify: all green"
