#!/usr/bin/env bash
# Full offline verification gauntlet: formatting, lints, build, tests
# (default and feature-gated randomized suites), and the figure binaries'
# JSON/trace export smoke test. No network access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test (default features) =="
cargo test -q --workspace --offline

echo "== cargo test --features proptest (randomized suites) =="
cargo test -q --workspace --offline --features proptest

echo "== bench harness smoke test (bounded budget) =="
DYNO_BENCH_MS=50 DYNO_SWEEP_TUPLES=400,800 \
    cargo bench -q --offline -p dyno-bench >/dev/null

echo "== fig10 --json/--trace smoke test =="
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
DYNO_TUPLES=300 cargo run -q --release --offline -p dyno-bench --bin fig10 -- \
    --json "$out/fig10.json" --trace "$out/fig10.jsonl" >/dev/null
test -s "$out/fig10.json"
test -s "$out/fig10.jsonl"
test -s "$out/fig10.jsonl.metrics.json"

echo "== plan cache invalidates on every committed schema change =="
# The traced fig10 run commits a train of 10 SCs; each must have cleared
# the maintenance-plan cache.
invalidations="$(grep -o '"plan.cache_invalidations":[0-9]*' \
    "$out/fig10.jsonl.metrics.json" | grep -o '[0-9]*$')"
test -n "$invalidations"
test "$invalidations" -ge 10
echo "plan.cache_invalidations = $invalidations (>= 10)"

echo "verify: all green"
